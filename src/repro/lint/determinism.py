"""Determinism rules (DET001–DET004).

The repro engine promises bit-identical reruns: experiments seed every RNG
explicitly, snapshots restore byte-identical state, and the checkpoint CI
gate diffs restored runs field by field.  A single unseeded draw, a global
``seed()`` call mutating shared RNG state, a wall-clock read in a result
path, or iteration over an unordered ``set`` in a merge kernel silently
breaks that promise.  These rules catch all four at lint time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext, ProjectContext, iter_scope_expressions
from .rules import rule

__all__ = []

#: Module-level numpy.random draw functions (legacy global-state API).
_NP_GLOBAL_DRAWS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "poisson",
    "exponential",
    "binomial",
    "bytes",
}

#: stdlib ``random`` module draw functions (module-level global state).
_STDLIB_DRAWS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "getrandbits",
    "randbytes",
}

#: Wall-clock reads that make outputs depend on when the run happened.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Functions whose bodies are order-sensitive merge/kernel paths (DET004).
_ORDERED_PATHS = {"merge", "_merge_summaries", "update_block", "_observe_block"}


def _call_name(module: ModuleContext, node: ast.Call) -> str | None:
    return module.resolve(node.func)


@rule(
    "DET001",
    severity="error",
    summary="unseeded random number generator in library code",
    rationale=(
        "Library code must only draw randomness from an explicitly seeded\n"
        "generator: `np.random.default_rng(seed)` or `random.Random(seed)`\n"
        "threaded in from the experiment configuration.  An unseeded\n"
        "constructor or a module-level draw (`np.random.randint`,\n"
        "`random.random`, ...) makes reruns non-reproducible and breaks the\n"
        "checkpoint restore gate, which diffs restored runs field by field."
    ),
    example="rng = np.random.default_rng()  # no seed argument",
)
def check_unseeded_rng(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag unseeded RNG constructors and global-state draw calls."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(module, node)
        if name is None:
            continue
        if name in ("numpy.random.default_rng", "numpy.random.Generator"):
            if not node.args and not node.keywords:
                yield module, node, (
                    "np.random.default_rng() called without a seed; thread an "
                    "explicit seed through from the experiment config"
                )
        elif name == "random.Random":
            if not node.args and not node.keywords:
                yield module, node, (
                    "random.Random() constructed without a seed; pass an "
                    "explicit seed"
                )
        elif name.startswith("numpy.random."):
            tail = name.rsplit(".", 1)[-1]
            if tail in _NP_GLOBAL_DRAWS:
                yield module, node, (
                    f"module-level np.random.{tail}() draws from hidden global "
                    "RNG state; use a seeded np.random.default_rng(seed) "
                    "Generator instead"
                )
        elif name.startswith("random."):
            tail = name.rsplit(".", 1)[-1]
            if tail in _STDLIB_DRAWS:
                yield module, node, (
                    f"stdlib random.{tail}() draws from hidden global RNG "
                    "state; use a seeded random.Random(seed) instance instead"
                )


@rule(
    "DET002",
    severity="error",
    summary="global RNG state seeded in place",
    rationale=(
        "`np.random.seed()` / `random.seed()` mutate process-global RNG\n"
        "state, so the draw sequence depends on everything else the process\n"
        "has run — imports, other experiments, test ordering.  Seeding must\n"
        "happen by constructing a private generator\n"
        "(`np.random.default_rng(seed)`), never by mutating the global one."
    ),
    example="np.random.seed(42)",
)
def check_global_seed(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag ``np.random.seed`` / ``random.seed`` calls."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(module, node)
        if name in ("numpy.random.seed", "random.seed"):
            short = "np.random.seed" if name.startswith("numpy") else "random.seed"
            yield module, node, (
                f"{short}() mutates process-global RNG state; construct a "
                "private seeded generator instead"
            )


@rule(
    "DET003",
    severity="error",
    summary="wall-clock read outside the telemetry layer",
    rationale=(
        "`time.time()` / `datetime.now()` make results depend on when the\n"
        "run happened, which breaks byte-identical restore.  Wall-clock\n"
        "reads belong only to the telemetry layer (trace timestamps) and\n"
        "benchmark harnesses; durations in library code use the monotonic\n"
        "`time.perf_counter()`, which these rules deliberately allow."
    ),
    example="started = time.time()",
)
def check_wall_clock(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag wall-clock calls outside telemetry/benchmark paths."""
    library = module.library_rel
    if library is not None and library.startswith("telemetry/"):
        return
    if "benchmarks/" in module.relpath or module.relpath.startswith("benchmarks"):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(module, node)
        if name in _WALL_CLOCK:
            yield module, node, (
                f"{name}() reads the wall clock outside telemetry/; use "
                "time.perf_counter() for durations or record timestamps via "
                "the telemetry layer"
            )


def _is_set_expression(node: ast.AST, set_names: set) -> bool:
    if isinstance(node, ast.SetComp) or isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expression(func.value, set_names)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


@rule(
    "DET004",
    severity="warning",
    summary="iteration over an unordered set in a merge/kernel path",
    rationale=(
        "Python `set` iteration order is hash-seed dependent across\n"
        "processes.  Inside order-sensitive paths — `merge`,\n"
        "`_merge_summaries`, `update_block`, `_observe_block` — iterating a\n"
        "bare set (in a `for` loop or comprehension) makes tie-breaking and\n"
        "floating-point accumulation order differ between the coordinator\n"
        "and its worker processes.  Iterate `sorted(the_set)` instead;\n"
        "membership tests (`x in s`) remain fine."
    ),
    example=(
        "def merge(self, other):\n"
        "    for key in self._keys | other._keys:  # unordered\n"
        "        ..."
    ),
)
def check_set_iteration(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag ``for``/comprehension iteration over bare sets in merge paths."""
    for scope, body in module.scopes():
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if scope.name not in _ORDERED_PATHS:
            continue
        set_names: set = set()
        for node in iter_scope_expressions(body):
            if isinstance(node, ast.Assign) and _is_set_expression(
                node.value, set_names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
        iter_sources: list[tuple[ast.AST, ast.AST]] = []
        for node in iter_scope_expressions(body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_sources.append((node, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    iter_sources.append((node, generator.iter))
        for anchor, source in iter_sources:
            if _is_set_expression(source, set_names):
                yield module, anchor, (
                    f"iteration over an unordered set inside {scope.name}(); "
                    "set iteration order varies across processes — iterate "
                    "sorted(...) instead"
                )
