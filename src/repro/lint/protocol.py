"""Protocol-completeness rules (PRO001–PRO009).

The engine composes sketches and estimators through duck-typed protocols:
checkpointing calls ``state_dict``/``load_state_dict`` and looks the class
up in the ``@snapshottable`` registry, sharded ingest calls
``update_block`` and ``merge``, and process-pool workers receive compact
snapshot *bytes* — never pickled live objects.  A subclass that forgets a
method inherits a base-class fallback that either raises at checkpoint
time or silently degrades to a per-item loop; these rules make the
omission a lint failure instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext, ProjectContext
from .rules import rule

__all__ = []

#: Sketch protocol bases; deriving from one makes PRO001/PRO002 apply.
_SKETCH_BASES = {
    "Sketch",
    "MergeableSketch",
    "DistinctCountSketch",
    "FrequencyMomentSketch",
    "PointQuerySketch",
}

#: Bases that additionally promise ``merge`` + ``update_block``.
_MERGEABLE_BASES = _SKETCH_BASES - {"Sketch"}

_ESTIMATOR_BASE = "ProjectedFrequencyEstimator"
_ESTIMATOR_HOOKS = ("_summary_state", "_load_summary_state", "_merge_summaries")


def _base_names(node: ast.ClassDef, module: ModuleContext) -> set:
    """Last components of the class's base names, unwrapping generics."""
    names = set()
    for base in node.bases:
        target = base
        if isinstance(target, ast.Subscript):  # Sketch[Hashable]
            target = target.value
        resolved = module.resolve(target)
        if resolved is not None:
            names.add(resolved.rsplit(".", 1)[-1])
    return names


def _defined_methods(node: ast.ClassDef) -> set:
    return {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_abstract(node: ast.ClassDef, module: ModuleContext) -> bool:
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in item.decorator_list:
            resolved = module.resolve(decorator)
            if resolved is not None and resolved.rsplit(".", 1)[-1] in (
                "abstractmethod",
                "abstractproperty",
            ):
                return True
    return "ABC" in _base_names(node, module)


def _has_snapshottable(node: ast.ClassDef, module: ModuleContext) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = module.resolve(target)
        if resolved is not None and resolved.rsplit(".", 1)[-1] == "snapshottable":
            return True
    return False


def _protocol_classes(
    module: ModuleContext,
) -> Iterator[tuple[ast.ClassDef, set, bool]]:
    """Concrete classes deriving a protocol base: (node, bases, is_estimator)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        # The protocol bases themselves (and renamed re-exports of them)
        # declare the contract; only their concrete subclasses must
        # implement it.
        if node.name in _SKETCH_BASES or node.name == _ESTIMATOR_BASE:
            continue
        bases = _base_names(node, module)
        is_sketch = bool(bases & _SKETCH_BASES)
        is_estimator = _ESTIMATOR_BASE in bases
        if not (is_sketch or is_estimator):
            continue
        if _is_abstract(node, module):
            continue
        yield node, bases, is_estimator


@rule(
    "PRO001",
    severity="error",
    summary="sketch/estimator subclass missing state_dict/load_state_dict",
    rationale=(
        "Checkpointing serialises every registered component through\n"
        "`state_dict()` / `load_state_dict()`.  The Sketch base raises\n"
        "SnapshotError for both, so a subclass that defines neither works\n"
        "fine until the first `repro checkpoint` run, which then fails at\n"
        "save time.  Every concrete subclass of a sketch protocol base must\n"
        "define both methods in its own body."
    ),
    example=(
        "class BrokenSketch(MergeableSketch):\n"
        "    ...  # no state_dict / load_state_dict"
    ),
)
def check_state_dict(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag concrete protocol subclasses without snapshot methods."""
    for node, bases, is_estimator in _protocol_classes(module):
        if is_estimator and not (bases & _SKETCH_BASES):
            # Estimators implement state_dict on the shared base; their
            # per-class contract is the summary hooks (PRO005).
            continue
        defined = _defined_methods(node)
        missing = [
            name
            for name in ("state_dict", "load_state_dict")
            if name not in defined
        ]
        if missing:
            yield module, node, (
                f"class {node.name} derives a sketch protocol base but does "
                f"not define {', '.join(missing)}; checkpointing will raise "
                "SnapshotError"
            )


@rule(
    "PRO002",
    severity="error",
    summary="sketch/estimator subclass not @snapshottable-registered",
    rationale=(
        "`persistence.from_bytes` resolves the class to restore through the\n"
        "`@snapshottable(tag)` registry.  An unregistered sketch or\n"
        "estimator can be saved (via its state_dict) but never restored —\n"
        "the failure surfaces in a different process, long after the bug\n"
        "was introduced.  Every concrete protocol subclass must carry the\n"
        "decorator."
    ),
    example=(
        "class UnregisteredSketch(MergeableSketch):  # no @snapshottable\n"
        "    def state_dict(self): ..."
    ),
)
def check_snapshottable(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag concrete protocol subclasses without ``@snapshottable``."""
    for node, bases, is_estimator in _protocol_classes(module):
        if not _has_snapshottable(node, module):
            kind = "estimator" if is_estimator else "sketch"
            yield module, node, (
                f"class {node.name} is a concrete {kind} but carries no "
                "@snapshottable(tag) decorator; snapshots of it cannot be "
                "restored"
            )


@rule(
    "PRO003",
    severity="error",
    summary="mergeable sketch subclass missing merge",
    rationale=(
        "The coordinator reduces per-shard sketches with `merge()`; the\n"
        "MergeableSketch base raises NotImplementedError.  A subclass\n"
        "without its own `merge` passes single-shard tests and fails the\n"
        "first multi-shard run."
    ),
    example="class NoMerge(DistinctCountSketch):\n    ...  # no merge",
)
def check_merge(module: ModuleContext, project: ProjectContext) -> Iterator[tuple]:
    """Flag mergeable sketch subclasses without ``merge``."""
    for node, bases, _ in _protocol_classes(module):
        if not (bases & _MERGEABLE_BASES):
            continue
        if "merge" not in _defined_methods(node):
            yield module, node, (
                f"class {node.name} derives a mergeable sketch base but does "
                "not define merge(); multi-shard reduction will raise "
                "NotImplementedError"
            )


@rule(
    "PRO004",
    severity="error",
    summary="mergeable sketch subclass missing update_block",
    rationale=(
        "The vectorized ingest path feeds `update_block(items, counts)`.\n"
        "The base-class fallback is a per-item Python loop, so a missing\n"
        "override silently forfeits the batch-kernel speedup the benchmarks\n"
        "gate on (and, for order-dependent sketches, changes semantics\n"
        "between batched and streamed ingest).  Suppress deliberately\n"
        "order-dependent sketches with `# repro: noqa[PRO004]` and document\n"
        "why in the class docstring."
    ),
    example="class SlowSketch(PointQuerySketch):\n    ...  # no update_block",
)
def check_update_block(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag mergeable sketch subclasses without ``update_block``."""
    for node, bases, _ in _protocol_classes(module):
        if not (bases & _MERGEABLE_BASES):
            continue
        if "update_block" not in _defined_methods(node):
            yield module, node, (
                f"class {node.name} derives a mergeable sketch base but does "
                "not define update_block(); ingest falls back to the "
                "per-item loop"
            )


def _estimate_takes_item(node: ast.ClassDef) -> bool:
    """Whether the class defines an ``estimate(self, item, ...)`` method.

    Distinguishes point-query sketches from moment sketches, whose
    ``estimate(self)`` takes no item and has no per-item batch twin.
    """
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name != "estimate":
            continue
        positional = len(item.args.posonlyargs) + len(item.args.args)
        return positional >= 2
    return False


@rule(
    "PRO007",
    severity="error",
    summary="point-query sketch missing estimate_block",
    rationale=(
        "The vectorized query path answers batches through\n"
        "`estimate_block(items)`, the query-side twin of `update_block`.\n"
        "The base-class fallback is a per-item Python loop, so a sketch\n"
        "that defines `estimate(item)` without its own `estimate_block`\n"
        "silently forfeits the batch-kernel speedup the query benchmark\n"
        "gates on.  Sketches whose per-item estimate is already a cheap\n"
        "dictionary lookup may keep the fallback deliberately — suppress\n"
        "with `# repro: noqa[PRO007]` and document why in the class\n"
        "docstring."
    ),
    example=(
        "class SlowQueries(PointQuerySketch):\n"
        "    def estimate(self, item): ...  # no estimate_block"
    ),
)
def check_estimate_block(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag item-estimating sketch subclasses without ``estimate_block``."""
    for node, bases, _ in _protocol_classes(module):
        if not (bases & _SKETCH_BASES):
            continue
        if not _estimate_takes_item(node):
            continue
        if "estimate_block" not in _defined_methods(node):
            yield module, node, (
                f"class {node.name} defines estimate(item) but not "
                "estimate_block(); batch queries fall back to the per-item "
                "loop"
            )


@rule(
    "PRO005",
    severity="error",
    summary="estimator subclass missing summary-state hooks",
    rationale=(
        "ProjectedFrequencyEstimator subclasses plug into checkpointing and\n"
        "distributed merge through `_summary_state` /\n"
        "`_load_summary_state` / `_merge_summaries`.  The base\n"
        "implementations raise, so all three must be defined together —\n"
        "defining a subset leaves snapshots that save but cannot restore."
    ),
    example=(
        "class Partial(ProjectedFrequencyEstimator):\n"
        "    def _summary_state(self): ...  # missing the other two hooks"
    ),
)
def check_estimator_hooks(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag estimator subclasses missing any of the three summary hooks."""
    for node, bases, is_estimator in _protocol_classes(module):
        if not is_estimator:
            continue
        defined = _defined_methods(node)
        missing = [name for name in _ESTIMATOR_HOOKS if name not in defined]
        if missing:
            yield module, node, (
                f"class {node.name} derives {_ESTIMATOR_BASE} but does not "
                f"define {', '.join(missing)}; checkpoint restore and "
                "distributed merge will raise"
            )


@rule(
    "PRO006",
    severity="error",
    summary="engine worker payload bypasses the snapshot-bytes contract",
    rationale=(
        "Process-pool workers must receive compact snapshot bytes\n"
        "(produced via the persistence layer's `to_bytes`, restored with\n"
        "`from_bytes`), never pickled live objects: pickling a Shard drags\n"
        "its RNG, caches and telemetry handles across the process boundary\n"
        "and couples the wire format to implementation layout.  Any use of\n"
        "the `pickle` module inside `engine/` is flagged, and the\n"
        "coordinator's ship/restore pair must keep routing through\n"
        "`_shippable_state` / `from_bytes`."
    ),
    example="import pickle  # inside src/repro/engine/",
)
def check_worker_payloads(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag pickle use in engine code and drifted coordinator plumbing."""
    library = module.library_rel
    in_engine = library is None or library.startswith("engine/")
    if not in_engine:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name.split(".", 1)[0] == "pickle":
                    yield module, node, (
                        "pickle imported in engine code; worker payloads must "
                        "ship snapshot bytes via the persistence layer"
                    )
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".", 1)[0] == "pickle":
                yield module, node, (
                    "pickle imported in engine code; worker payloads must "
                    "ship snapshot bytes via the persistence layer"
                )
    if library != "engine/coordinator.py":
        return
    required = {
        "_ingest_in_processes": (
            "_shippable_state",
            "worker payloads must be built with _shippable_state (snapshot "
            "bytes), not live estimator objects",
        ),
        "_ingest_estimator_state": (
            "from_bytes",
            "worker-side restore must go through persistence.from_bytes",
        ),
    }
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in required:
            continue
        needle, message = required[node.name]
        mentioned = {
            sub.attr
            for sub in ast.walk(node)
            if isinstance(sub, ast.Attribute)
        } | {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}
        if needle not in mentioned:
            yield module, node, f"{node.name}() drifted: {message}"


#: Modules whose import anywhere in the transport layer re-introduces an
#: object serialiser on the wire (PRO008).  ``pickle`` is absent on
#: purpose: PRO006 already flags it across all of ``engine/`` (transport
#: included), and one finding per defect keeps the fixtures exact.
_SERIALIZER_MODULES = {"marshal"}


def _receiver_name(node: ast.AST) -> str | None:
    """Terminal identifier of a call receiver: ``worker.conn`` → ``conn``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule(
    "PRO008",
    severity="error",
    summary="transport module reintroduces object serialisation on the wire",
    rationale=(
        "The transport layer's wire contract is *snapshot bytes only*:\n"
        "row blocks cross as raw buffers and estimator state crosses as\n"
        "persistence-layer `to_bytes()` payloads inside `repro/transport@1`\n"
        "frames.  Importing `pickle` or `marshal`, or calling the\n"
        "pickle-based `Connection.send()` / `Connection.recv()` instead of\n"
        "`send_bytes()` / `recv_bytes()`, silently couples the wire format\n"
        "to Python object layout and breaks cross-version shard workers.\n"
        "Transport code must frame bytes explicitly."
    ),
    example=(
        "conn.send(estimator)  # inside src/repro/engine/transport/\n"
        "state = conn.recv()"
    ),
)
def check_transport_wire_contract(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag serialiser imports and pickled Connection traffic in transport."""
    library = module.library_rel
    in_transport = library is None or library.startswith("engine/transport")
    if not in_transport:
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                root = name.name.split(".", 1)[0]
                if root in _SERIALIZER_MODULES:
                    yield module, node, (
                        f"{root} imported in transport code; the wire "
                        "carries snapshot bytes and raw buffers only"
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".", 1)[0]
            if root in _SERIALIZER_MODULES:
                yield module, node, (
                    f"{root} imported in transport code; the wire carries "
                    "snapshot bytes and raw buffers only"
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in ("send", "recv"):
                continue
            receiver = _receiver_name(node.func.value)
            # Scoped to pipe Connections by naming convention (`conn`,
            # `self._conn`, ...): raw sockets legitimately call
            # ``sock.send`` / ``sock.recv`` on plain bytes.
            if receiver is None or "conn" not in receiver.lower():
                continue
            yield module, node, (
                f"Connection.{node.func.attr}() pickles its argument; "
                "transport code must frame bytes explicitly via "
                f"{node.func.attr}_bytes()"
            )


@rule(
    "PRO009",
    severity="error",
    summary="transport RPC bypasses the resilience deadline/retry wrappers",
    rationale=(
        "Transport RPC call sites must go through the blessed wrappers in\n"
        "`engine/resilience/`: socket connects through\n"
        "`connect_with_retry()` (bounded connect timeout, seeded backoff,\n"
        "retry counters) and blocking pipe reads through\n"
        "`recv_bytes_with_deadline()` (poll-with-deadline, precise\n"
        "TransportError on breach).  A bare `socket.create_connection()`\n"
        "hangs on an unreachable worker for the OS default timeout and\n"
        "retries nothing; a bare `Connection.recv_bytes()` blocks forever\n"
        "on a hung worker, so the supervisor never gets to respawn it."
    ),
    example=(
        "sock = socket.create_connection((host, port))\n"
        "frame = conn.recv_bytes()  # inside src/repro/engine/transport/"
    ),
)
def check_transport_rpc_wrappers(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag bare connects and unbounded pipe reads in transport code."""
    library = module.library_rel
    in_transport = library is None or library.startswith("engine/transport")
    if not in_transport:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "create_connection":
            yield module, node, (
                "bare socket.create_connection() in transport code; dial "
                "through resilience.connect_with_retry() so connects carry "
                "a bounded timeout, seeded backoff and retry accounting"
            )
        elif isinstance(func, ast.Attribute) and func.attr == "recv_bytes":
            receiver = _receiver_name(func.value)
            # Same Connection naming convention as PRO008: raw sockets
            # read via ``sock.recv`` and are deadline-bounded by
            # ``settimeout``; pipe Connections have no such knob.
            if receiver is None or "conn" not in receiver.lower():
                continue
            yield module, node, (
                "bare Connection.recv_bytes() in transport code blocks "
                "without a deadline; read through "
                "resilience.recv_bytes_with_deadline() so a hung worker "
                "surfaces as a TransportError the supervisor can recover"
            )
