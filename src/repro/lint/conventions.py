"""Telemetry-convention rules (TEL001–TEL003).

``docs/observability.md`` is the authoritative catalogue of metric names,
their label sets and the span naming scheme; dashboards and the Prometheus
scrape config are written against it.  A metric declared under a name the
catalogue does not know, a label the catalogue does not list, or a span
that breaks the ``component.op`` scheme silently falls off every
dashboard.  These rules diff call sites against the parsed catalogue.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .context import ModuleContext, ProjectContext, iter_scope_nodes
from .rules import rule

__all__ = []

_METRIC_NAME = re.compile(r"^repro_[a-z0-9_]+$")
_SPAN_NAME = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+$")

#: MetricsRegistry accessor methods that declare a metric by name.
_DECLARATIONS = {"counter", "gauge", "histogram"}

#: Metric-instance methods whose keyword arguments are label values.
_RECORDERS = {"inc", "observe", "set"}


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _declaration_calls(module: ModuleContext) -> Iterator[tuple[ast.Call, str]]:
    """Every ``registry.counter/gauge/histogram("literal", ...)`` call."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _DECLARATIONS):
            continue
        name = _literal_first_arg(node)
        if name is not None:
            yield node, name


@rule(
    "TEL001",
    severity="error",
    summary="metric name not in the docs/observability.md catalogue",
    rationale=(
        "Dashboards and alerting are written against the metric catalogue\n"
        "in docs/observability.md.  A metric declared under an\n"
        "uncatalogued name (or one that breaks the `repro_*` snake_case\n"
        "scheme) is emitted but observed by nothing.  Add the metric to\n"
        "the catalogue table in the same PR that introduces it."
    ),
    example='registry.counter("rows_total")  # missing repro_ prefix, uncatalogued',
)
def check_metric_names(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag metric declarations with bad or uncatalogued names."""
    catalogue = project.metric_catalogue
    for node, name in _declaration_calls(module):
        if not _METRIC_NAME.match(name):
            yield module, node, (
                f"metric name {name!r} does not match the repro_[a-z0-9_]+ "
                "naming scheme"
            )
        elif catalogue and name not in catalogue:
            yield module, node, (
                f"metric {name!r} is not in the docs/observability.md "
                "catalogue; add it to the metric table"
            )


@rule(
    "TEL002",
    severity="error",
    summary="metric recorded with a label the catalogue does not list",
    rationale=(
        "Prometheus treats every new label as a new time series; a label\n"
        "absent from the catalogue means either a typo (the dashboard\n"
        "query silently matches nothing) or unbounded cardinality nobody\n"
        "signed off on.  Labels passed to `.inc()` / `.observe()` /\n"
        "`.set()` must be a subset of the catalogue's label set for that\n"
        "metric."
    ),
    example=(
        'registry.counter("repro_merge_total").inc(shard="0")\n'
        "# catalogue lists no labels for repro_merge_total"
    ),
)
def check_metric_labels(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag recorder calls whose label kwargs drift from the catalogue."""
    catalogue = project.metric_catalogue
    if not catalogue:
        return
    for scope, body in module.scopes():
        # Metric handles are either used inline
        # (registry.counter("x").inc(...)) or bound to a local first
        # (h = registry.histogram("x", ...); h.observe(...)); track both.
        handle_names: dict[str, str] = {}
        for node in iter_scope_nodes(body):
            if not isinstance(node, ast.Assign):
                continue
            if isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr in _DECLARATIONS:
                    name = _literal_first_arg(node.value)
                    if name is not None:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                handle_names[target.id] = name
        for node in iter_scope_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _RECORDERS):
                continue
            metric_name: str | None = None
            receiver = func.value
            if isinstance(receiver, ast.Call):
                inner = receiver.func
                if isinstance(inner, ast.Attribute) and inner.attr in _DECLARATIONS:
                    metric_name = _literal_first_arg(receiver)
            elif isinstance(receiver, ast.Name):
                metric_name = handle_names.get(receiver.id)
            if metric_name is None or metric_name not in catalogue:
                continue
            allowed = catalogue[metric_name]
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if keyword.arg not in allowed:
                    listed = ", ".join(sorted(allowed)) or "none"
                    yield module, node, (
                        f"metric {metric_name!r} recorded with label "
                        f"{keyword.arg!r}; the catalogue allows: {listed}"
                    )


@rule(
    "TEL003",
    severity="error",
    summary="span name breaks the component.op scheme or is uncatalogued",
    rationale=(
        "Trace spans follow the `component.op` scheme\n"
        "(`coordinator.ingest`, `service.query`, ...) and the CI telemetry\n"
        "gate asserts specific span names appear in captured traces.  A\n"
        "renamed or misformatted span silently drops out of the trace\n"
        "assertions and of any trace-derived timing dashboards.  New spans\n"
        "go into the span list in docs/observability.md."
    ),
    example='with telemetry.span("ingesting rows"):  # not component.op',
)
def check_span_names(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag ``span("...")`` calls with drifting names."""
    spans = project.span_catalogue
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name_part = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name_part != "span":
            continue
        literal = _literal_first_arg(node)
        if literal is None:
            continue
        if not _SPAN_NAME.match(literal):
            yield module, node, (
                f"span name {literal!r} does not follow the component.op "
                "naming scheme"
            )
        elif spans and literal not in spans:
            yield module, node, (
                f"span {literal!r} is not in the docs/observability.md span "
                "list; add it in the same PR"
            )
