"""The one finding format every repro checker speaks.

A :class:`Finding` is one problem at one location: the rule that fired, its
severity, a repo-root-relative path, a 1-based line (0 for whole-file or
artifact findings) and a human-readable message.  The AST rule engine, the
docs gate and the artifact schema gates all emit this type, so there is a
single rendering, a single baseline fingerprint and a single exit-code
convention across ``python -m repro lint`` and the ``tools/check_*.py``
wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities, most severe first.  Every severity fails the
#: gate — the distinction is informational (an ``error`` breaks a contract
#: outright, a ``warning`` flags a risky construction).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    Attributes
    ----------
    path:
        Repo-root-relative POSIX path of the offending file (or artifact).
    line:
        1-based line number; 0 when the finding concerns the whole file.
    column:
        0-based column offset; 0 when not applicable.
    rule:
        Identifier of the rule that fired, e.g. ``"DET001"``.
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable description of the specific violation.
    """

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str

    def __str__(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}" if self.line else self.path
        return f"{location}: {self.rule} [{self.severity}] {self.message}"

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by baseline files.

        Deliberately excludes the line/column so a baseline survives
        unrelated edits above the finding; duplicates within a file are
        handled by counting (see :func:`repro.lint.engine.load_baseline`).
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict:
        """JSON-able view (the ``findings`` entries of the JSON report)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            column=int(payload["column"]),
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
        )

    def relocated(self, path: str) -> "Finding":
        """The same finding reported against a different path string."""
        return replace(self, path=path)
