"""repro.lint — contract-aware static analysis for the repro codebase.

Six PRs of growth left the repository's correctness resting on unwritten
cross-module contracts: every sketch must speak the ``update_block`` /
``merge`` / ``state_dict`` protocol and register with ``@snapshottable``,
kernels must not mix ``uint64`` and ``int64`` arithmetic (NumPy silently
upcasts the pair to ``float64``), library code must never draw from an
unseeded RNG or read the wall clock outside the telemetry layer, and every
metric or span name must match the catalogue in ``docs/observability.md``.
This package turns those contracts into executable rules.

It is a dependency-free (stdlib ``ast`` + ``importlib``) analyzer:

* :mod:`repro.lint.findings` — the one finding format shared by every
  checker (the AST rules, the docs gate, the artifact schema gates);
* :mod:`repro.lint.rules` — the rule registry with per-rule severity,
  rationale and examples (``python -m repro lint --list-rules``);
* :mod:`repro.lint.determinism`, :mod:`repro.lint.kernel_safety`,
  :mod:`repro.lint.protocol`, :mod:`repro.lint.conventions` — the four
  rule families;
* :mod:`repro.lint.engine` — the runner: file collection,
  ``# repro: noqa[RULE]`` suppressions, baseline files, pretty/JSON
  reports, ``--changed-only`` support and the shared exit-code
  convention (0 clean, 1 findings, 2 usage error);
* :mod:`repro.lint.docs_check` and :mod:`repro.lint.artifacts` — the
  refolded ``tools/check_docs.py`` / ``check_snapshot_schema.py`` /
  ``check_telemetry_schema.py`` checkers, emitting the same findings.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from .engine import (
    LINT_BASELINE_SCHEMA,
    LINT_REPORT_SCHEMA,
    LintReport,
    LintUsageError,
    exit_code,
    iter_python_files,
    load_baseline,
    render_findings,
    run_lint,
    write_baseline,
)
from .findings import SEVERITIES, Finding
from .rules import Rule, all_rules, get_rule, rule_ids

__all__ = [
    "LINT_BASELINE_SCHEMA",
    "LINT_REPORT_SCHEMA",
    "Finding",
    "SEVERITIES",
    "LintReport",
    "LintUsageError",
    "Rule",
    "all_rules",
    "get_rule",
    "rule_ids",
    "run_lint",
    "iter_python_files",
    "render_findings",
    "exit_code",
    "load_baseline",
    "write_baseline",
]
