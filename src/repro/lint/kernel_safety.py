"""Kernel-safety rules (KER001–KER003).

The vectorized sketch kernels live or die by dtype discipline: NumPy
silently upcasts a ``uint64``/``int64`` pair to ``float64``, losing the
top bits of 64-bit hashes; float equality comparisons make bucket
boundaries platform-dependent; and scatter updates (``np.add.at``) on a
target whose dtype was never declared inherit whatever dtype an upstream
refactor produces.  These rules enforce the discipline the hand-written
kernels in ``sketches/hashing.py`` already follow — every operand of a
64-bit expression wrapped in an explicit ``np.uint64(...)`` cast, every
accumulator constructed with an explicit ``dtype=``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import (
    ModuleContext,
    ProjectContext,
    collect_local_dtypes,
    infer_dtype,
    iter_scope_nodes,
)
from .rules import rule

__all__ = []

_UNSIGNED = {"uint8", "uint16", "uint32", "uint64"}
_SIGNED = {"int8", "int16", "int32", "int64", "intp"}
_FLOATS = {"float16", "float32", "float64"}

#: Scatter ufunc methods KER003 audits.
_SCATTER_UFUNCS = {"add", "maximum", "minimum", "subtract", "bitwise_or"}


def _in_sketch_scope(module: ModuleContext) -> bool:
    library = module.library_rel
    if library is not None:
        return library.startswith("sketches/")
    # Outside src/repro (fixtures, tests) everything is in scope so golden
    # fixtures exercise the rule without replicating the package layout.
    return True


@rule(
    "KER001",
    severity="error",
    summary="mixed unsigned/signed 64-bit arithmetic in a block kernel",
    rationale=(
        "NumPy resolves `uint64 <op> int64` by upcasting BOTH operands to\n"
        "float64, silently truncating 64-bit hash values to 53 bits of\n"
        "mantissa.  Every operand of a uint64 expression must be uint64 —\n"
        "wrap scalars in `np.uint64(...)` as the kernels in\n"
        "`sketches/hashing.py` do.  (Bare int literals are not flagged:\n"
        "NumPy applies value-based casting to them.)"
    ),
    example="mixed = hashes * step  # hashes: uint64, step: int64",
)
def check_mixed_dtype(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag binary ops whose operands infer to uint vs signed/float."""
    if not _in_sketch_scope(module):
        return
    for scope, body in module.scopes():
        local_dtypes = collect_local_dtypes(body, module)
        for node in iter_scope_nodes(body):
            if not isinstance(node, ast.BinOp):
                continue
            # Int literals are value-cast by NumPy; only flag when both
            # sides carry an explicit, conflicting declared dtype.
            if isinstance(node.left, ast.Constant) or isinstance(
                node.right, ast.Constant
            ):
                continue
            left = infer_dtype(node.left, module, local_dtypes)
            right = infer_dtype(node.right, module, local_dtypes)
            if left is None or right is None or left == right:
                continue
            left_unsigned = left in _UNSIGNED
            right_unsigned = right in _UNSIGNED
            if left_unsigned != right_unsigned and (
                "64" in left or "64" in right
            ):
                yield module, node, (
                    f"mixed {left}/{right} arithmetic: NumPy upcasts the "
                    "uint64/int64 pair to float64, truncating 64-bit hashes; "
                    "cast both operands to one dtype explicitly"
                )


@rule(
    "KER002",
    severity="error",
    summary="float equality comparison in a block kernel",
    rationale=(
        "`==` / `!=` between floats makes bucket assignment and tie-breaking\n"
        "depend on rounding that varies across BLAS builds and platforms.\n"
        "Kernels must compare with a tolerance (`np.isclose`) or restructure\n"
        "to integer comparisons.  Division produces float64, so comparing a\n"
        "division result with `==` is flagged too."
    ),
    example="collision = (value / width) == threshold",
)
def check_float_equality(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag Eq/NotEq comparisons with float-typed operands."""
    if not _in_sketch_scope(module):
        return
    for scope, body in module.scopes():
        local_dtypes = collect_local_dtypes(body, module)
        for node in iter_scope_nodes(body):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    yield module, node, (
                        "float equality comparison; use np.isclose() or an "
                        "integer comparison"
                    )
                    break
                inferred = infer_dtype(operand, module, local_dtypes)
                if inferred in _FLOATS:
                    yield module, node, (
                        f"equality comparison on a {inferred} operand; use "
                        "np.isclose() or restructure to integer comparison"
                    )
                    break


@rule(
    "KER003",
    severity="error",
    summary="scatter update on a target with no declared dtype",
    rationale=(
        "`np.add.at(target, idx, vals)` accumulates in the target's dtype.\n"
        "If the target was never constructed with an explicit `dtype=` (or\n"
        "`astype` cast) in this file, an upstream refactor can silently\n"
        "change the accumulator to float64 and lose counts past 2**53.\n"
        "Declare the accumulator dtype where it is allocated."
    ),
    example=(
        "summed = np.zeros(n)           # dtype never declared\n"
        "np.add.at(summed, idx, counts)"
    ),
)
def check_undeclared_scatter(
    module: ModuleContext, project: ProjectContext
) -> Iterator[tuple]:
    """Flag ``np.<ufunc>.at`` calls on targets without a declared dtype."""
    for scope, body in module.scopes():
        local_dtypes = collect_local_dtypes(body, module)
        for node in iter_scope_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "at"):
                continue
            ufunc = func.value
            if not isinstance(ufunc, ast.Attribute):
                continue
            if ufunc.attr not in _SCATTER_UFUNCS:
                continue
            resolved = module.resolve(ufunc)
            if resolved is None or not resolved.startswith("numpy."):
                continue
            if not node.args:
                continue
            target = node.args[0]
            # Unwrap subscripts: np.add.at(self._table[row], ...) audits
            # the dtype of self._table.
            root = target
            while isinstance(root, ast.Subscript):
                root = root.value
            inferred = infer_dtype(root, module, local_dtypes)
            if inferred is None:
                label = ast.unparse(target)
                yield module, node, (
                    f"np.{ufunc.attr}.at on {label!r} whose dtype is never "
                    "declared in this file; allocate the accumulator with an "
                    "explicit dtype="
                )
