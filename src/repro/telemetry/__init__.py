"""repro.telemetry — metrics, tracing spans, and exporters for the engine.

The dependency-free observability layer the serving stack is instrumented
with (see ``docs/observability.md`` for the metric catalogue and span
naming convention):

* :mod:`repro.telemetry.registry` — labeled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` metrics in a mergeable
  :class:`MetricsRegistry`, plus the process-global default registry and
  the :func:`enable` / :func:`disable` switch whose off position costs
  one no-op call per instrumented site;
* :mod:`repro.telemetry.trace` — nested :func:`span` context managers
  with monotonic timing, exported as ``repro/trace@1`` JSON or Chrome
  trace-event format;
* :mod:`repro.telemetry.export` — Prometheus text exposition, JSON
  metrics, a span-tree pretty-printer, and the schema validators behind
  ``tools/check_telemetry_schema.py``.

Instrumented paths: ``Coordinator.ingest`` (rows/blocks/bytes, per-shard
timings, partition skew), estimator ``observe_rows`` blocks, the α-net
``update_block`` kernels, ``merge()``, checkpoint save/load, and the
``QueryService`` cache and latency counters.  Worker processes record
into their own registry and ship it back with their estimator snapshots;
the coordinator merges it into the process-global registry.

Example::

    >>> from repro.telemetry import get_registry, render_prometheus, span
    >>> with span("demo.work", items=3):
    ...     get_registry().counter("demo_items_total").inc(3)
    >>> "demo_items_total" in render_prometheus(get_registry()) or not enabled()
    True
"""

from .export import (
    METRICS_SCHEMA,
    TELEMETRY_SCHEMA,
    metrics_to_dict,
    render_prometheus,
    render_span_tree,
    validate_telemetry_section,
    validate_trace_payload,
)
from .registry import (
    SIZE_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled,
    get_registry,
    reset,
    scoped_registry,
    set_registry,
)
from .trace import (
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    get_tracer,
    scoped_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NullRegistry",
    "SIZE_BUCKETS",
    "SpanRecord",
    "TELEMETRY_SCHEMA",
    "TIME_BUCKETS",
    "TRACE_SCHEMA",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "metrics_to_dict",
    "render_prometheus",
    "render_span_tree",
    "reset",
    "scoped_registry",
    "scoped_tracer",
    "set_registry",
    "set_tracer",
    "span",
    "validate_telemetry_section",
    "validate_trace_payload",
]
