"""Tracing spans: nested, monotonic-clock timed sections of the hot path.

A span is one timed section of work — ``coordinator.ingest``,
``coordinator.merge``, ``service.query`` — opened with the
:func:`span` context manager.  Spans nest: a span opened while another is
active records the outer span as its parent, so a finished trace is a
forest that answers "where did the time go?" for an ingest run, a merge,
a checkpoint restore, or a whole experiment.

Timing is monotonic (``time.perf_counter`` offsets from the tracer's
epoch), so durations are immune to wall-clock steps; the tracer also
records one wall-clock epoch so exported traces can be placed in real
time.  Two export shapes:

* :meth:`Tracer.to_dict` — the ``repro/trace@1`` JSON schema this repo's
  tools validate (``tools/check_telemetry_schema.py``);
* :meth:`Tracer.to_chrome` — Chrome trace-event format, loadable in
  ``chrome://tracing`` / Perfetto.

When telemetry is disabled (:func:`repro.telemetry.registry.disable`),
:func:`span` yields a shared no-op handle without touching the clock.

Example::

    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", detail="x"):
    ...         pass
    >>> [record.name for record in tracer.spans]
    ['inner', 'outer']
    >>> tracer.spans[0].parent_id == tracer.spans[1].span_id
    True
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from . import registry as _registry

__all__ = [
    "SpanHandle",
    "SpanRecord",
    "TRACE_SCHEMA",
    "Tracer",
    "get_tracer",
    "scoped_tracer",
    "set_tracer",
    "span",
]

#: Format tag of the JSON trace export.
TRACE_SCHEMA = "repro/trace@1"

#: Attribute value types a span accepts (JSON scalars).
AttrValue = str | int | float | bool


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, lineage, monotonic timing, attributes."""

    span_id: int
    parent_id: int | None
    name: str
    start_seconds: float
    duration_seconds: float
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The ``repro/trace@1`` JSON shape of this span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "attrs": dict(self.attrs),
        }


class SpanHandle:
    """The live handle :func:`span` yields inside the ``with`` block."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: dict[str, AttrValue]) -> None:
        self.attrs = attrs

    def set(self, **attrs: AttrValue) -> "SpanHandle":
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)
        return self


class _NullSpanHandle:
    """Disabled-mode handle: attribute writes vanish."""

    __slots__ = ()

    def set(self, **attrs: AttrValue) -> "_NullSpanHandle":
        """No-op."""
        return self


_NULL_HANDLE = _NullSpanHandle()


@contextmanager
def _null_span() -> Iterator[_NullSpanHandle]:
    yield _NULL_HANDLE


class Tracer:
    """Collect spans for one process (or one scoped run).

    Spans are appended on *exit*, so ``spans`` lists them in completion
    order (children before parents); :meth:`to_dict` re-sorts by start
    time for a stable export.  A tracer's span ids are unique within the
    tracer, and the active-span stack is thread-local, so concurrent
    threads nest correctly without interleaving each other's lineage.
    """

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._epoch_perf = time.perf_counter()
        self._epoch_unix = time.time()
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[SpanHandle]:
        """Open a timed span named ``name``; nests under any active span.

        An exception raised inside the block is recorded as an ``error``
        attribute (the exception type name) and re-raised — failed work is
        exactly the work a trace must not lose.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        handle = SpanHandle(dict(attrs))
        started = time.perf_counter()
        try:
            yield handle
        except BaseException as error:
            handle.attrs["error"] = type(error).__name__
            raise
        finally:
            duration = time.perf_counter() - started
            stack.pop()
            record = SpanRecord(
                span_id=span_id,
                parent_id=parent_id,
                name=str(name),
                start_seconds=started - self._epoch_perf,
                duration_seconds=duration,
                attrs=handle.attrs,
            )
            with self._lock:
                self.spans.append(record)

    def reset(self) -> None:
        """Drop every recorded span and re-anchor the epoch."""
        with self._lock:
            self.spans.clear()
            self._epoch_perf = time.perf_counter()
            self._epoch_unix = time.time()
            self._next_id = 0
        self._local = threading.local()

    def to_dict(self) -> dict:
        """The ``repro/trace@1`` export: schema tag, epoch, sorted spans."""
        with self._lock:
            ordered = sorted(
                self.spans, key=lambda record: (record.start_seconds, record.span_id)
            )
            return {
                "schema": TRACE_SCHEMA,
                "epoch_unix_seconds": self._epoch_unix,
                "process_id": os.getpid(),
                "spans": [record.to_dict() for record in ordered],
            }

    def to_chrome(self) -> dict:
        """Chrome trace-event export (open in ``chrome://tracing``/Perfetto).

        Complete events (``"ph": "X"``) with microsecond timestamps
        relative to the tracer epoch; span attributes ride in ``args``.
        """
        pid = os.getpid()
        with self._lock:
            ordered = sorted(
                self.spans, key=lambda record: (record.start_seconds, record.span_id)
            )
            events = [
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": record.start_seconds * 1e6,
                    "dur": record.duration_seconds * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": dict(record.attrs),
                }
                for record in ordered
            ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}


_DEFAULT_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer the instrumented hot paths record into."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global default; returns the old one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


@contextmanager
def scoped_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Swap in a fresh (or given) tracer for the duration of a block.

    Example::

        >>> with scoped_tracer() as tracer:
        ...     with tracer.span("work"):
        ...         pass
        >>> len(tracer.spans)
        1
    """
    fresh = tracer if tracer is not None else Tracer()
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


def span(name: str, **attrs: AttrValue):
    """Open a span on the process-global tracer (no-op when disabled).

    The one-line instrumentation entry point the engine uses::

        with span("coordinator.ingest", backend="serial") as current:
            ...
            current.set(rows=1024)
    """
    if not _registry.enabled():
        return _null_span()
    return _DEFAULT_TRACER.span(name, **attrs)
