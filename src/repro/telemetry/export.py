"""Exporters and validators for the telemetry layer.

Two renderers over a :class:`~repro.telemetry.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, labeled samples, histogram
  ``_bucket``/``_sum``/``_count`` series with cumulative ``le`` bounds),
  ready to be scraped from a file or served by a future ``repro.server``;
* :func:`metrics_to_dict` — a JSON shape (the registry ``state_dict``
  under a schema tag) for programmatic consumers.

Plus the span-side counterparts: :func:`render_span_tree` pretty-prints a
finished trace as an indented tree, and :func:`validate_trace_payload` /
:func:`validate_telemetry_section` are the schema checks behind
``tools/check_telemetry_schema.py``.

Example::

    >>> from repro.telemetry import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_rows_total", "rows ingested").inc(3, shard="0")
    >>> print(render_prometheus(registry))
    # HELP repro_rows_total rows ingested
    # TYPE repro_rows_total counter
    repro_rows_total{shard="0"} 3
    <BLANKLINE>
"""

from __future__ import annotations

import math

from .registry import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry
from .trace import TRACE_SCHEMA, Tracer

__all__ = [
    "METRICS_SCHEMA",
    "TELEMETRY_SCHEMA",
    "metrics_to_dict",
    "render_prometheus",
    "render_span_tree",
    "validate_telemetry_section",
    "validate_trace_payload",
]

#: Format tag of the JSON metrics export.
METRICS_SCHEMA = "repro/metrics@1"

#: Format tag of the ``telemetry`` section inside experiment result JSON.
TELEMETRY_SCHEMA = "repro/telemetry@1"


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integral floats print without a dot."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_block(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry | NullRegistry) -> str:
    """Render every metric in ``registry`` as Prometheus text exposition."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.series():
                lines.append(
                    f"{metric.name}{_label_block(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, series in metric.series():
                cumulative = 0
                for bound, bucket_count in zip(
                    metric.buckets, series.bucket_counts
                ):
                    cumulative += bucket_count
                    bucket_labels = list(labels) + [("le", _format_value(bound))]
                    lines.append(
                        f"{metric.name}_bucket{_label_block(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = list(labels) + [("le", "+Inf")]
                lines.append(
                    f"{metric.name}_bucket{_label_block(inf_labels)} {series.count}"
                )
                lines.append(
                    f"{metric.name}_sum{_label_block(labels)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(
                    f"{metric.name}_count{_label_block(labels)} {series.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def metrics_to_dict(registry: MetricsRegistry | NullRegistry) -> dict:
    """The JSON metrics export: the registry state under a schema tag."""
    return {"schema": METRICS_SCHEMA, **registry.state_dict()}


def render_span_tree(trace: Tracer | dict) -> str:
    """Pretty-print a trace as an indented span tree with durations.

    Accepts a live :class:`~repro.telemetry.trace.Tracer` or an exported
    ``repro/trace@1`` payload.  Spans sort by start time within each
    parent; durations print in the most readable unit.
    """
    payload = trace.to_dict() if isinstance(trace, Tracer) else trace
    spans = payload.get("spans", [])
    children: dict[object, list[dict]] = {}
    for entry in spans:
        children.setdefault(entry.get("parent_id"), []).append(entry)
    for group in children.values():
        group.sort(key=lambda entry: (entry["start_seconds"], entry["span_id"]))

    def duration_text(seconds: float) -> str:
        if seconds >= 1.0:
            return f"{seconds:.2f}s"
        if seconds >= 1e-3:
            return f"{seconds * 1e3:.2f}ms"
        return f"{seconds * 1e6:.0f}us"

    lines: list[str] = []

    def walk(parent_id: object, depth: int) -> None:
        for entry in children.get(parent_id, ()):  # depth-first, start order
            attrs = entry.get("attrs") or {}
            attr_text = (
                " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
                if attrs
                else ""
            )
            lines.append(
                "  " * depth
                + f"{entry['name']}  {duration_text(entry['duration_seconds'])}"
                + attr_text
            )
            walk(entry["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def validate_trace_payload(payload: object) -> list[str]:
    """Check a decoded trace JSON against the ``repro/trace@1`` schema.

    Returns human-readable problems (empty list = valid): the schema tag,
    the span field types, id uniqueness, parent references, and that every
    child span nests inside its parent's time interval.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"trace payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema must be {TRACE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("epoch_unix_seconds"), (int, float)):
        problems.append("'epoch_unix_seconds' must be a number")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("'spans' must be a list")
        return problems
    intervals: dict[int, tuple[float, float]] = {}
    for position, entry in enumerate(spans):
        where = f"span #{position}"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        span_id = entry.get("span_id")
        if not isinstance(span_id, int):
            problems.append(f"{where}: 'span_id' must be an integer")
            continue
        if span_id in intervals:
            problems.append(f"{where}: duplicate span_id {span_id}")
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}: 'name' must be a non-empty string")
        start = entry.get("start_seconds")
        duration = entry.get("duration_seconds")
        if not isinstance(start, (int, float)):
            problems.append(f"{where}: 'start_seconds' must be a number")
            start = 0.0
        if not isinstance(duration, (int, float)) or duration < 0:
            problems.append(f"{where}: 'duration_seconds' must be a number >= 0")
            duration = 0.0
        attrs = entry.get("attrs")
        if not isinstance(attrs, dict):
            problems.append(f"{where}: 'attrs' must be an object")
        else:
            for key, value in attrs.items():
                if not isinstance(key, str) or not isinstance(
                    value, (str, int, float, bool)
                ):
                    problems.append(
                        f"{where}: attr {key!r} must map a string to a JSON "
                        "scalar"
                    )
        intervals[span_id] = (float(start), float(start) + float(duration))
    # Lineage pass, with a small tolerance: parents record their duration a
    # hair after the child context exits, so exact nesting holds up to clock
    # granularity.
    epsilon = 1e-6
    for position, entry in enumerate(spans):
        if not isinstance(entry, dict):
            continue
        parent_id = entry.get("parent_id")
        if parent_id is None:
            continue
        if not isinstance(parent_id, int) or parent_id not in intervals:
            problems.append(
                f"span #{position}: parent_id {parent_id!r} does not "
                "reference a span in this trace"
            )
            continue
        span_id = entry.get("span_id")
        if not isinstance(span_id, int) or span_id not in intervals:
            continue
        child_start, child_end = intervals[span_id]
        parent_start, parent_end = intervals[parent_id]
        if child_start + epsilon < parent_start or child_end > parent_end + epsilon:
            problems.append(
                f"span #{position}: interval [{child_start:.6f}, "
                f"{child_end:.6f}] escapes its parent's [{parent_start:.6f}, "
                f"{parent_end:.6f}]"
            )
    return problems


def validate_telemetry_section(section: object) -> list[str]:
    """Check a result-JSON ``telemetry`` section (``repro/telemetry@1``).

    The shape the experiment runner records: schema tag, enabled flag,
    per-phase wall times, ingest/cache/query accounting, and the peak
    summary size.  Returns human-readable problems; empty list = valid.
    """
    problems: list[str] = []
    if not isinstance(section, dict):
        return [
            f"'telemetry' must be an object, got {type(section).__name__}"
        ]
    if section.get("schema") != TELEMETRY_SCHEMA:
        problems.append(
            f"telemetry schema must be {TELEMETRY_SCHEMA!r}, "
            f"got {section.get('schema')!r}"
        )
    if not isinstance(section.get("enabled"), bool):
        problems.append("'telemetry.enabled' must be a boolean")
    phases = section.get("phases")
    if not isinstance(phases, dict):
        problems.append("'telemetry.phases' must be an object")
    else:
        for key in ("ingest_seconds", "merge_seconds", "query_seconds"):
            value = phases.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"'telemetry.phases.{key}' must be a number >= 0"
                )
    ingest = section.get("ingest")
    if not isinstance(ingest, dict):
        problems.append("'telemetry.ingest' must be an object")
    else:
        for key in ("sessions", "rows_total"):
            if not isinstance(ingest.get(key), int):
                problems.append(f"'telemetry.ingest.{key}' must be an integer")
        if not isinstance(ingest.get("rows_per_second"), (int, float)):
            problems.append("'telemetry.ingest.rows_per_second' must be a number")
    cache = section.get("cache")
    if not isinstance(cache, dict):
        problems.append("'telemetry.cache' must be an object")
    else:
        for key in ("hits", "misses", "invalidations"):
            if not isinstance(cache.get(key), int):
                problems.append(f"'telemetry.cache.{key}' must be an integer")
        if not isinstance(cache.get("hit_rate"), (int, float)):
            problems.append("'telemetry.cache.hit_rate' must be a number")
    queries = section.get("queries")
    if not isinstance(queries, dict):
        problems.append("'telemetry.queries' must be an object")
    else:
        if not isinstance(queries.get("count"), int):
            problems.append("'telemetry.queries.count' must be an integer")
        kinds = queries.get("kinds")
        if not isinstance(kinds, dict) or not all(
            isinstance(k, str) and isinstance(v, int) for k, v in kinds.items()
        ):
            problems.append(
                "'telemetry.queries.kinds' must map kind names to integers"
            )
    transport = section.get("transport")
    if transport is not None:  # optional: sections predate the transport layer
        if not isinstance(transport, dict):
            problems.append("'telemetry.transport' must be an object")
        else:
            bytes_shipped = transport.get("bytes_shipped")
            if not isinstance(bytes_shipped, int) or bytes_shipped < 0:
                problems.append(
                    "'telemetry.transport.bytes_shipped' must be an "
                    "integer >= 0"
                )
            backends = transport.get("backends")
            if not isinstance(backends, list) or not all(
                isinstance(backend, str) for backend in backends
            ):
                problems.append(
                    "'telemetry.transport.backends' must be a list of "
                    "backend names"
                )
    if not isinstance(section.get("peak_summary_bits"), int):
        problems.append("'telemetry.peak_summary_bits' must be an integer")
    return problems
