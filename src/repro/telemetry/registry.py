"""Labeled metrics: counters, gauges, log-bucket histograms, and a registry.

The measurement substrate of the serving stack.  Three metric kinds cover
everything the engine needs to account for itself:

* :class:`Counter` — monotonically increasing totals (rows ingested, cache
  hits, checkpoint bytes);
* :class:`Gauge` — last-written values (partition skew, summary size in
  bits);
* :class:`Histogram` — distributions over **fixed log-scale buckets**
  (ingest block latencies, per-query latencies, batch sizes).  Fixed
  buckets are what make histograms *mergeable*: two histograms recorded in
  different processes add bucket-wise, so shard workers can ship their
  registries back to the coordinator next to their estimator snapshots.

All three are labeled: ``counter.inc(5, shard="2")`` keeps one series per
distinct label set, exactly like the Prometheus data model the exporter in
:mod:`repro.telemetry.export` renders.

A process-global default registry backs the instrumented hot paths (see
:func:`get_registry`); :func:`disable` swaps in a shared null registry
whose metrics are no-op singletons, so an instrumented call site costs one
function call and one attribute access when telemetry is off.

Example::

    >>> registry = MetricsRegistry()
    >>> registry.counter("rows_total", "rows ingested").inc(128, shard="0")
    >>> registry.counter("rows_total").value(shard="0")
    128.0
    >>> other = MetricsRegistry()
    >>> other.counter("rows_total", "rows ingested").inc(64, shard="0")
    >>> registry.merge(other).counter("rows_total").value(shard="0")
    192.0
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping

from ..errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NullRegistry",
    "SIZE_BUCKETS",
    "TIME_BUCKETS",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "reset",
    "scoped_registry",
    "set_registry",
]

#: Log-scale (base 2) latency buckets: 1 µs .. ~17 minutes.  Fixed across
#: every histogram instance so recordings from any process merge bucket-wise.
TIME_BUCKETS = tuple(1e-6 * 2.0**k for k in range(31))

#: Log-scale (base 2) magnitude buckets for sizes and counts: 1 .. 2^30.
SIZE_BUCKETS = tuple(float(2**k) for k in range(31))

#: Canonical label-set key: sorted ``(key, value)`` pairs, values stringified.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common name/help/kind plumbing of the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise InvalidParameterError(
                f"metric name {name!r} must be non-empty [A-Za-z0-9_] "
                "(Prometheus-safe without escaping)"
            )
        self.name = name
        self.help = help_text

    def series(self) -> list[tuple[LabelKey, object]]:
        """Every recorded ``(label set, value)`` pair, sorted by labels."""
        raise NotImplementedError


class Counter(_Metric):
    """A labeled, monotonically increasing total.

    Example::

        >>> counter = Counter("queries_total")
        >>> counter.inc(kind="fp")
        >>> counter.inc(2, kind="fp")
        >>> counter.value(kind="fp")
        3.0
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        """Current total of the series selected by ``labels`` (0 if unseen)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> list[tuple[LabelKey, object]]:
        """Every recorded ``(label set, total)`` pair, sorted by labels."""
        return sorted(self._values.items())

    def _merge(self, other: "Counter") -> None:
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value

    def _state(self) -> list:
        return [[list(key), value] for key, value in self.series()]

    def _load(self, state: list) -> None:
        for key, value in state:
            labels = dict(tuple(pair) for pair in key)
            self.inc(float(value), **labels)


class Gauge(_Metric):
    """A labeled last-written value.

    Merging keeps the *maximum* per series — the useful aggregation for the
    peak-style gauges the engine records (summary bits, partition skew)
    when per-process registries are folded together.

    Example::

        >>> gauge = Gauge("summary_size_bits")
        >>> gauge.set(4096, estimator="alpha-net")
        >>> gauge.value(estimator="alpha-net")
        4096.0
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the series selected by ``labels`` with ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the series selected by ``labels`` by ``amount``."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: object) -> float:
        """Current value of the series selected by ``labels`` (0 if unseen)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> list[tuple[LabelKey, object]]:
        """Every recorded ``(label set, value)`` pair, sorted by labels."""
        return sorted(self._values.items())

    def _merge(self, other: "Gauge") -> None:
        for key, value in other._values.items():
            mine = self._values.get(key)
            self._values[key] = value if mine is None else max(mine, value)

    def _state(self) -> list:
        return [[list(key), value] for key, value in self.series()]

    def _load(self, state: list) -> None:
        for key, value in state:
            labels = dict(tuple(pair) for pair in key)
            current = self._values.get(_label_key(labels))
            merged = float(value) if current is None else max(current, float(value))
            self.set(merged, **labels)


class HistogramSeries:
    """One label set's worth of histogram state (bucket counts + moments)."""

    __slots__ = ("bucket_counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """A labeled distribution over fixed, monotonically increasing buckets.

    ``buckets`` are *upper bounds* (``le`` in Prometheus terms); an implicit
    ``+Inf`` bucket catches everything above the last bound.  Because the
    bounds are fixed at construction, two histograms with the same bounds
    merge exactly by adding bucket counts — no resampling, no raw values.

    Example::

        >>> histogram = Histogram("latency_seconds", buckets=(0.1, 1.0))
        >>> for value in (0.05, 0.5, 5.0):
        ...     histogram.observe(value)
        >>> histogram.snapshot().count
        3
        >>> histogram.snapshot().bucket_counts
        [1, 1, 1]
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                "increasing"
            )
        self.buckets = bounds
        self._series: dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, count: int = 1, **labels: object) -> None:
        """Record ``value`` (``count`` times) into the ``labels`` series."""
        if count < 1:
            raise InvalidParameterError(
                f"histogram {self.name!r} observation count must be >= 1"
            )
        value = float(value)
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        # Binary search beats a linear scan over 31 log-scale bounds.
        low, high = 0, len(self.buckets)
        while low < high:
            mid = (low + high) // 2
            if value <= self.buckets[mid]:
                high = mid
            else:
                low = mid + 1
        series.bucket_counts[low] += count
        series.count += count
        series.total += value * count
        series.min = min(series.min, value)
        series.max = max(series.max, value)

    def snapshot(self, **labels: object) -> HistogramSeries:
        """The state of the ``labels`` series (empty state if unseen)."""
        return self._series.get(
            _label_key(labels), HistogramSeries(len(self.buckets))
        )

    def series(self) -> list[tuple[LabelKey, object]]:
        """Every recorded ``(label set, series state)`` pair, sorted."""
        return sorted(self._series.items())

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution estimate of the ``q``-quantile (``0 <= q <= 1``).

        Returns the upper bound of the bucket holding the target rank —
        exact to within one log-scale bucket, which is the deal histograms
        trade raw samples for.  ``nan`` when the series is empty.
        """
        if not 0 <= q <= 1:
            raise InvalidParameterError(f"q must be in [0, 1], got {q}")
        series = self.snapshot(**labels)
        if series.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * series.count))
        seen = 0
        for index, bucket_count in enumerate(series.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return series.max  # +Inf bucket: best available bound
        return series.max

    def _merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise InvalidParameterError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                "layouts"
            )
        for key, theirs in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = HistogramSeries(len(self.buckets))
            mine.bucket_counts = [
                a + b for a, b in zip(mine.bucket_counts, theirs.bucket_counts)
            ]
            mine.count += theirs.count
            mine.total += theirs.total
            mine.min = min(mine.min, theirs.min)
            mine.max = max(mine.max, theirs.max)

    def _state(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "series": [
                [
                    list(key),
                    {
                        "bucket_counts": list(state.bucket_counts),
                        "count": state.count,
                        "total": state.total,
                        "min": None if math.isinf(state.min) else state.min,
                        "max": None if math.isinf(state.max) else state.max,
                    },
                ]
                for key, state in self.series()
            ],
        }

    def _load(self, state: dict) -> None:
        incoming = Histogram(
            self.name, self.help, tuple(float(b) for b in state["buckets"])
        )
        for key, fields in state["series"]:
            series = HistogramSeries(len(incoming.buckets))
            series.bucket_counts = [int(c) for c in fields["bucket_counts"]]
            series.count = int(fields["count"])
            series.total = float(fields["total"])
            series.min = math.inf if fields["min"] is None else float(fields["min"])
            series.max = -math.inf if fields["max"] is None else float(fields["max"])
            incoming._series[_label_key(dict(tuple(p) for p in key))] = series
        self._merge(incoming)


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and exact merging.

    The registry is the unit that crosses process boundaries: a shard
    worker records into a fresh registry, ships ``state_dict()`` back next
    to its estimator snapshot, and the coordinator folds it into the
    process-global registry with :meth:`merge_state` — counters add,
    gauges keep their per-series maximum, histograms add bucket-wise.

    Example::

        >>> registry = MetricsRegistry()
        >>> registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        >>> restored = MetricsRegistry.from_state_dict(registry.state_dict())
        >>> restored.histogram("h", buckets=(1.0, 2.0)).snapshot().count
        1
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help_text, **kwargs)
            elif not isinstance(metric, cls):
                raise InvalidParameterError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter registered under ``name``."""
        return self._get_or_create(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the gauge registered under ``name``."""
        return self._get_or_create(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram registered under ``name``."""
        metric = self._get_or_create(Histogram, name, help_text, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):  # type: ignore[union-attr]
            raise InvalidParameterError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric  # type: ignore[return-value]

    def collect(self) -> list[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s recordings into this registry; returns ``self``."""
        for metric in other.collect():
            mine = self._get_or_create(
                type(metric),
                metric.name,
                metric.help,
                **(
                    {"buckets": metric.buckets}
                    if isinstance(metric, Histogram)
                    else {}
                ),
            )
            mine._merge(metric)  # type: ignore[attr-defined]
        return self

    def merge_state(self, state: dict) -> "MetricsRegistry":
        """Fold a :meth:`state_dict` payload (e.g. from a worker) into this."""
        return self.merge(MetricsRegistry.from_state_dict(state))

    def state_dict(self) -> dict:
        """JSON-able view of every metric — the cross-process wire form."""
        return {
            "metrics": [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "state": metric._state(),  # type: ignore[attr-defined]
                }
                for metric in self.collect()
            ]
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`state_dict` payload."""
        registry = cls()
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for entry in state.get("metrics", ()):
            kind = kinds.get(entry.get("kind"))
            if kind is None:
                raise InvalidParameterError(
                    f"unknown metric kind {entry.get('kind')!r} in registry state"
                )
            if kind is Histogram:
                metric = registry.histogram(
                    entry["name"],
                    entry.get("help", ""),
                    tuple(float(b) for b in entry["state"]["buckets"]),
                )
            elif kind is Counter:
                metric = registry.counter(entry["name"], entry.get("help", ""))
            else:
                metric = registry.gauge(entry["name"], entry.get("help", ""))
            metric._load(entry["state"])  # type: ignore[attr-defined]
        return registry

    def reset(self) -> None:
        """Drop every metric (test and run isolation helper)."""
        with self._lock:
            self._metrics.clear()


class NullMetric:
    """Shared no-op metric handed out by :class:`NullRegistry`.

    Every mutator is an empty method, so disabled-mode instrumentation
    costs one registry call and one no-op method call per site.
    """

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def set(self, value: float, **labels: object) -> None:
        """No-op."""

    def observe(self, value: float, count: int = 1, **labels: object) -> None:
        """No-op."""

    def value(self, **labels: object) -> float:
        """Always 0 — nothing is recorded in null mode."""
        return 0.0


_NULL_METRIC = NullMetric()


class NullRegistry:
    """The disabled-mode registry: every accessor returns the null metric."""

    def counter(self, name: str, help_text: str = "") -> NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name: str, help_text: str = "") -> NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def collect(self) -> list:
        """Nothing is ever recorded in null mode."""
        return []

    def merge(self, other: object) -> "NullRegistry":
        """No-op; returns self."""
        return self

    def merge_state(self, state: dict) -> "NullRegistry":
        """No-op; returns self."""
        return self

    def state_dict(self) -> dict:
        """An empty registry state."""
        return {"metrics": []}

    def reset(self) -> None:
        """No-op."""


_NULL_REGISTRY = NullRegistry()
_DEFAULT_REGISTRY = MetricsRegistry()
# Telemetry defaults to on (the instrumentation is block/call granular, not
# per row); REPRO_TELEMETRY=0 in the environment starts the process dark.
_ENABLED = os.environ.get("REPRO_TELEMETRY", "1") not in ("0", "false", "off")


def enabled() -> bool:
    """Whether telemetry is currently recording in this process."""
    return _ENABLED


def enable() -> None:
    """Turn telemetry on (the default)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn telemetry off: hot paths see the null registry and no-op spans."""
    global _ENABLED
    _ENABLED = False


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-global registry, or the null registry when disabled."""
    return _DEFAULT_REGISTRY if _ENABLED else _NULL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-global default; returns the old one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def reset() -> None:
    """Clear the process-global registry (test isolation helper)."""
    _DEFAULT_REGISTRY.reset()


@contextmanager
def scoped_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) registry for the duration of a block.

    The run-isolation primitive: the experiment runner and worker
    processes record into a scoped registry so their numbers are
    attributable to one run and never double-count a forked parent's
    history.

    Example::

        >>> with scoped_registry() as registry:
        ...     registry.counter("c").inc()
        ...     registry.counter("c").value()
        1.0
    """
    fresh = registry if registry is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
