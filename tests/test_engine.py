"""Tests for the sharded engine: partitioning, coordination, serving.

The load-bearing property is acceptance-criterion #3 of the engine design:
a :class:`~repro.engine.coordinator.Coordinator` with ``N >= 2`` shards must
produce estimates equal (deterministic summaries) or statistically
equivalent (randomized summaries with shared seeds) to single-shard
ingestion of the same stream.
"""

from __future__ import annotations

import pytest

from repro import (
    AlphaNetEstimator,
    ColumnQuery,
    Coordinator,
    Dataset,
    EstimationError,
    ExactBaseline,
    InvalidParameterError,
    QueryService,
    RowStream,
    Shard,
    SketchPlan,
    StreamPartitioner,
    UniformSampleEstimator,
)
from repro.engine import LatencyRecorder

D = 8
DATA = Dataset.random(n_rows=600, n_columns=D, seed=4)
STREAM = RowStream(DATA)
QUERY = ColumnQuery.of([0, 3, 6], D)


def _alpha_net_factory() -> AlphaNetEstimator:
    return AlphaNetEstimator(
        n_columns=D, alpha=0.3, plan=SketchPlan.default_f0(epsilon=0.3, seed=9)
    )


# -- partitioning ---------------------------------------------------------------


@pytest.mark.parametrize("policy", ["round_robin", "hash"])
def test_partition_is_exact_cover(policy: str) -> None:
    partitioner = StreamPartitioner(n_shards=4, policy=policy)
    buckets = partitioner.split(STREAM)
    assert len(buckets) == 4
    merged = [row for bucket in buckets for row in bucket]
    assert sorted(merged) == sorted(STREAM)


def test_round_robin_balances_exactly() -> None:
    buckets = StreamPartitioner(n_shards=4, policy="round_robin").split(STREAM)
    assert [len(bucket) for bucket in buckets] == [150, 150, 150, 150]


def test_hash_policy_is_content_addressed() -> None:
    """Hash placement ignores arrival order: a shuffled replay lands rows
    on exactly the same shards."""
    partitioner = StreamPartitioner(n_shards=4, policy="hash", hash_seed=2)
    original = partitioner.split(STREAM)
    shuffled = partitioner.split(STREAM.shuffled(seed=13))
    assert [sorted(bucket) for bucket in original] == [
        sorted(bucket) for bucket in shuffled
    ]


def test_lazy_substreams_match_materialised_split() -> None:
    partitioner = StreamPartitioner(n_shards=3, policy="hash", hash_seed=5)
    assert [list(sub) for sub in partitioner.substreams(STREAM)] == partitioner.split(
        STREAM
    )


def test_partitioner_validation() -> None:
    with pytest.raises(InvalidParameterError):
        StreamPartitioner(n_shards=0)
    with pytest.raises(InvalidParameterError):
        StreamPartitioner(n_shards=2, policy="range")
    with pytest.raises(InvalidParameterError):
        STREAM.shard(3, 3)
    with pytest.raises(InvalidParameterError):
        STREAM.shard(0, 2, policy="range")


# -- shards ---------------------------------------------------------------------


def test_shard_ingest_and_snapshot() -> None:
    shard = Shard(0, ExactBaseline(n_columns=D))
    shard.ingest(STREAM.take(100))
    assert shard.rows_ingested == 100
    assert shard.estimator.rows_observed == 100
    frozen = shard.snapshot()
    shard.ingest(STREAM.take(50))
    assert frozen.rows_observed == 100
    with pytest.raises(InvalidParameterError):
        Shard(-1, ExactBaseline(n_columns=D))


# -- coordinator equivalence ----------------------------------------------------


@pytest.mark.parametrize("policy", ["round_robin", "hash"])
@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_exact_baseline_equals_single_node(policy: str, n_shards: int) -> None:
    coordinator = Coordinator(
        lambda: ExactBaseline(n_columns=D),
        n_shards=n_shards,
        policy=policy,
        backend="serial",
    )
    report = coordinator.ingest(STREAM)
    single = ExactBaseline(n_columns=D).observe(STREAM)
    assert report.rows_total == 600
    assert sum(report.rows_per_shard) == 600
    merged = coordinator.merged_estimator
    assert merged.rows_observed == single.rows_observed
    for p in (0, 1, 2):
        assert merged.estimate_fp(QUERY, p) == single.estimate_fp(QUERY, p)
    assert merged.heavy_hitters(QUERY, phi=0.05) == single.heavy_hitters(
        QUERY, phi=0.05
    )


def test_sharded_alpha_net_equals_single_node() -> None:
    """Lossless sketch merges make sharded == single-node, bit for bit."""
    coordinator = Coordinator(
        _alpha_net_factory, n_shards=4, policy="round_robin", backend="serial"
    )
    coordinator.ingest(STREAM)
    single = _alpha_net_factory().observe(STREAM)
    for columns in ([0, 3, 6], [1, 2], [0, 1, 2, 3, 4]):
        query = ColumnQuery.of(columns, D)
        assert coordinator.merged_estimator.estimate_fp(
            query, 0
        ) == single.estimate_fp(query, 0)


def test_process_backend_matches_serial_backend() -> None:
    parallel = Coordinator(_alpha_net_factory, n_shards=2, backend="processes")
    serial = Coordinator(_alpha_net_factory, n_shards=2, backend="serial")
    report = parallel.ingest(STREAM)
    serial.ingest(STREAM)
    assert report.backend == "processes"
    assert parallel.merged_estimator.estimate_fp(QUERY, 0) == (
        serial.merged_estimator.estimate_fp(QUERY, 0)
    )


def test_sharded_uniform_sample_is_statistically_equivalent() -> None:
    """Randomized summary: the sharded estimate obeys the single-node
    accuracy guarantee against the exact answer."""
    coordinator = Coordinator(
        lambda: UniformSampleEstimator(n_columns=D, sample_size=150, seed=6),
        n_shards=4,
        backend="serial",
    )
    coordinator.ingest(STREAM)
    merged = coordinator.merged_estimator
    assert merged.rows_observed == 600
    exact = ExactBaseline(n_columns=D).observe(STREAM)
    pattern = (0, 1, 1)
    assert abs(
        merged.estimate_frequency(QUERY, pattern)
        - exact.estimate_frequency(QUERY, pattern)
    ) <= 3 * merged.additive_error_bound()


def test_incremental_ingest_accumulates() -> None:
    coordinator = Coordinator(
        lambda: ExactBaseline(n_columns=D), n_shards=2, backend="serial"
    )
    half = 300
    rows = list(STREAM)
    coordinator.ingest(RowStream.from_rows(rows[:half], D))
    coordinator.ingest(RowStream.from_rows(rows[half:], D))
    single = ExactBaseline(n_columns=D).observe(STREAM)
    assert coordinator.merged_estimator.rows_observed == 600
    assert coordinator.merged_estimator.estimate_fp(QUERY, 2) == single.estimate_fp(
        QUERY, 2
    )


def test_coordinator_guards() -> None:
    with pytest.raises(InvalidParameterError):
        Coordinator(lambda: ExactBaseline(n_columns=D), backend="threads")
    with pytest.raises(InvalidParameterError):
        Coordinator(lambda: ExactBaseline(n_columns=D), max_workers=0)
    coordinator = Coordinator(lambda: ExactBaseline(n_columns=D), n_shards=2)
    with pytest.raises(EstimationError):
        coordinator.merged_estimator


def test_unmergeable_estimator_cannot_be_sharded() -> None:
    from repro.core.estimator import ProjectedFrequencyEstimator

    class Opaque(ProjectedFrequencyEstimator):
        def _observe(self, row) -> None:
            pass

        def size_in_bits(self) -> int:
            return 0

    coordinator = Coordinator(
        lambda: Opaque(n_columns=D), n_shards=2, backend="serial"
    )
    with pytest.raises(EstimationError):
        coordinator.ingest(STREAM)

    # One shard needs no merge for a single batch, but a second batch would
    # have to merge into the first — refused up front, before any ingestion.
    single = Coordinator(lambda: Opaque(n_columns=D), n_shards=1, backend="serial")
    single.ingest(STREAM)
    with pytest.raises(EstimationError):
        single.ingest(STREAM)


# -- query service --------------------------------------------------------------


def _service(cache_size: int = 64) -> QueryService:
    coordinator = Coordinator(
        lambda: ExactBaseline(n_columns=D), n_shards=2, backend="serial"
    )
    coordinator.ingest(STREAM)
    return coordinator.query_service(cache_size=cache_size)


def test_service_answers_match_estimator() -> None:
    service = _service()
    direct = ExactBaseline(n_columns=D).observe(STREAM)
    assert service.estimate_fp(QUERY, 0) == direct.estimate_fp(QUERY, 0)
    pattern = (1, 1, 0)
    assert service.estimate_frequency(QUERY, pattern) == direct.estimate_frequency(
        QUERY, pattern
    )
    assert service.heavy_hitters(QUERY, phi=0.05) == direct.heavy_hitters(
        QUERY, phi=0.05
    )


def test_service_caches_repeat_queries() -> None:
    service = _service()
    first = service.estimate_fp(QUERY, 2)
    second = service.estimate_fp(QUERY, 2)
    assert first == second
    info = service.cache_info()
    assert (info.hits, info.misses) == (1, 1)
    assert info.hit_rate == 0.5
    # Latency is recorded for the miss only.
    assert service.stats()["fp"].count == 1


def test_service_batch_queries_and_stats() -> None:
    service = _service()
    queries = [ColumnQuery.of(cols, D) for cols in ([0], [1, 2], [3, 4, 5])]
    answers = service.batch_estimate_fp(queries, p=0)
    assert len(answers) == 3
    assert service.stats()["fp"].count == 3
    repeats = service.batch_estimate_fp(queries, p=0)
    assert repeats == answers
    assert service.cache_info().hits == 3


def test_service_cache_eviction_and_disable() -> None:
    service = _service(cache_size=2)
    queries = [ColumnQuery.of([c], D) for c in range(4)]
    for query in queries:
        service.estimate_fp(query, 0)
    assert service.cache_info().size == 2
    uncached = _service(cache_size=0)
    uncached.estimate_fp(QUERY, 0)
    uncached.estimate_fp(QUERY, 0)
    assert uncached.cache_info().hits == 0
    with pytest.raises(InvalidParameterError):
        QueryService(ExactBaseline(n_columns=D), cache_size=-1)


def test_service_heavy_hitter_cache_returns_copies() -> None:
    service = _service()
    report = service.heavy_hitters(QUERY, phi=0.05)
    report.clear()
    assert service.heavy_hitters(QUERY, phi=0.05) != {}


def test_service_invalidate_clears_cache() -> None:
    service = _service()
    service.estimate_fp(QUERY, 0)
    service.invalidate()
    assert service.cache_info().size == 0
    service.estimate_fp(QUERY, 0)
    assert service.cache_info().misses == 2


def test_service_auto_invalidates_after_later_ingest() -> None:
    """Regression: a service created before a later Coordinator.ingest used
    to keep serving answers cached against the smaller summary, because the
    ingest merged into the shared estimator in place without the service
    noticing.  The estimator version check must force a recompute."""
    coordinator = Coordinator(
        lambda: ExactBaseline(n_columns=D), n_shards=2, backend="serial"
    )
    rows = list(STREAM)
    coordinator.ingest(RowStream.from_rows(rows[:200], D))
    service = coordinator.query_service()
    assert service.estimate_fp(QUERY, 1) == 200.0
    coordinator.ingest(RowStream.from_rows(rows[200:], D))
    # Same query again: must reflect the merged data, not the cached answer.
    assert service.estimate_fp(QUERY, 1) == 600.0
    single = ExactBaseline(n_columns=D).observe(STREAM)
    for p in (0, 2):
        assert service.estimate_fp(QUERY, p) == single.estimate_fp(QUERY, p)
    assert service.heavy_hitters(QUERY, phi=0.05) == single.heavy_hitters(
        QUERY, phi=0.05
    )


def test_service_cache_still_hits_between_ingests() -> None:
    """The version check only drops the cache when the summary actually
    mutated; repeat queries in a quiet period still hit."""
    service = _service()
    service.estimate_fp(QUERY, 0)
    service.estimate_fp(QUERY, 0)
    info = service.cache_info()
    assert (info.hits, info.misses) == (1, 1)


def test_latency_recorder_percentiles() -> None:
    recorder = LatencyRecorder()
    for value in (0.01, 0.02, 0.03, 0.04, 0.10):
        recorder.record(value)
    summary = recorder.summary()
    assert summary.count == 5
    assert summary.p50_seconds == pytest.approx(0.03)
    assert summary.p95_seconds == pytest.approx(0.10)
    assert summary.mean_seconds == pytest.approx(0.04)
    with pytest.raises(InvalidParameterError):
        recorder.record(-1.0)
    empty = LatencyRecorder()
    assert empty.summary().count == 0
    with pytest.raises(InvalidParameterError):
        empty.percentile(50)
