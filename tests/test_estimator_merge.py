"""Tests for the estimator-level merge/snapshot protocol.

The engine's correctness rests on ``estimator.merge`` being equivalent to
having observed the concatenated stream on a single node.  These tests check
that equivalence per estimator family, the capability flag, the snapshot
isolation guarantee, and the incompatibility diagnostics.
"""

from __future__ import annotations

import pytest

from repro import (
    AllSubsetsBaseline,
    AlphaNetEstimator,
    ColumnQuery,
    Dataset,
    EstimationError,
    ExactBaseline,
    InvalidParameterError,
    SketchPlan,
    UniformSampleEstimator,
)
from repro.core.estimator import ProjectedFrequencyEstimator

D = 8
FIRST = Dataset.random(n_rows=300, n_columns=D, seed=11)
SECOND = Dataset.random(n_rows=200, n_columns=D, seed=22)
UNION = FIRST.concatenate(SECOND)
QUERY = ColumnQuery.of([0, 2, 5], D)


class _UnmergeableEstimator(ProjectedFrequencyEstimator):
    """Minimal estimator that opts out of the merge protocol."""

    def _observe(self, row):
        pass

    def size_in_bits(self) -> int:
        return 0


def test_capability_flag_reflects_override() -> None:
    assert ExactBaseline(n_columns=D).is_mergeable
    assert UniformSampleEstimator(n_columns=D, sample_size=8).is_mergeable
    assert not _UnmergeableEstimator(n_columns=D).is_mergeable


def test_unmergeable_estimator_raises_estimation_error() -> None:
    one, other = _UnmergeableEstimator(n_columns=D), _UnmergeableEstimator(n_columns=D)
    with pytest.raises(EstimationError):
        one.merge(other)


def test_merge_rejects_type_and_shape_mismatches() -> None:
    exact = ExactBaseline(n_columns=D)
    with pytest.raises(InvalidParameterError):
        exact.merge(UniformSampleEstimator(n_columns=D, sample_size=8))
    with pytest.raises(InvalidParameterError):
        exact.merge(ExactBaseline(n_columns=D + 1))
    with pytest.raises(InvalidParameterError):
        exact.merge(ExactBaseline(n_columns=D, alphabet_size=3))


def test_exact_baseline_merge_equals_union() -> None:
    sharded = ExactBaseline(n_columns=D).observe(FIRST)
    sharded.merge(ExactBaseline(n_columns=D).observe(SECOND))
    single = ExactBaseline(n_columns=D).observe(UNION)
    assert sharded.rows_observed == single.rows_observed == 500
    for p in (0, 1, 2):
        assert sharded.estimate_fp(QUERY, p) == single.estimate_fp(QUERY, p)
    pattern = (0, 1, 0)
    assert sharded.estimate_frequency(QUERY, pattern) == single.estimate_frequency(
        QUERY, pattern
    )
    assert sharded.heavy_hitters(QUERY, phi=0.1) == single.heavy_hitters(QUERY, phi=0.1)


def test_alpha_net_merge_equals_union_exactly() -> None:
    """KMV merges are lossless, so sharded alpha-net F0 answers are identical."""

    def make() -> AlphaNetEstimator:
        return AlphaNetEstimator(
            n_columns=D, alpha=0.25, plan=SketchPlan.default_f0(epsilon=0.3, seed=5)
        )

    sharded = make().observe(FIRST)
    sharded.merge(make().observe(SECOND))
    single = make().observe(UNION)
    assert sharded.rows_observed == single.rows_observed
    for columns in ([0, 2, 5], [1, 3], [0, 1, 2, 3, 4, 5, 6]):
        query = ColumnQuery.of(columns, D)
        assert sharded.estimate_fp(query, 0) == single.estimate_fp(query, 0)


def test_alpha_net_merge_point_plan_equals_union() -> None:
    def make() -> AlphaNetEstimator:
        return AlphaNetEstimator(
            n_columns=D, alpha=0.25, plan=SketchPlan.default_point(epsilon=0.05, seed=3)
        )

    sharded = make().observe(FIRST)
    sharded.merge(make().observe(SECOND))
    single = make().observe(UNION)
    pattern = (1, 0, 1)
    assert sharded.estimate_frequency(QUERY, pattern) == single.estimate_frequency(
        QUERY, pattern
    )


def test_alpha_net_merge_incompatible_nets_raise() -> None:
    plan = SketchPlan.default_f0(epsilon=0.3, seed=5)
    base = AlphaNetEstimator(n_columns=D, alpha=0.25, plan=plan)
    other_alpha = AlphaNetEstimator(n_columns=D, alpha=0.125, plan=plan)
    with pytest.raises(InvalidParameterError):
        base.merge(other_alpha)
    # Same net, different sketch families kept.
    moment_plan = AlphaNetEstimator(
        n_columns=D, alpha=0.25, plan=SketchPlan.default_fp(p=1.5, epsilon=0.4, seed=5)
    )
    with pytest.raises(InvalidParameterError):
        base.merge(moment_plan)


def test_alpha_net_failed_merge_leaves_target_unchanged() -> None:
    """A mismatch surfacing in a later sketch family must not leave the
    target partially merged (double-counted distinct sketches)."""
    from repro.sketches.countmin import CountMinSketch
    from repro.sketches.kmv import KMVSketch

    def make(point_seed: int) -> AlphaNetEstimator:
        plan = SketchPlan(
            distinct_factory=lambda i: KMVSketch.from_epsilon(0.3, seed=5 + i),
            point_factory=lambda i: CountMinSketch.from_error(0.05, seed=point_seed + i),
        )
        return AlphaNetEstimator(n_columns=D, alpha=0.25, plan=plan)

    base = make(point_seed=9).observe(FIRST)
    incompatible = make(point_seed=900).observe(SECOND)
    before = base.estimate_fp(QUERY, 0)
    with pytest.raises(InvalidParameterError):
        base.merge(incompatible)
    assert base.estimate_fp(QUERY, 0) == before
    assert base.rows_observed == 300


def test_uniform_sample_merge_preserves_estimator_contract() -> None:
    def make(seed: int) -> UniformSampleEstimator:
        return UniformSampleEstimator(n_columns=D, sample_size=120, seed=seed)

    sharded = make(1).observe(FIRST)
    sharded.merge(make(2).observe(SECOND))
    assert sharded.rows_observed == 500
    exact = ExactBaseline(n_columns=D).observe(UNION)
    pattern = (0, 0, 0)
    estimate = sharded.estimate_frequency(QUERY, pattern)
    # Theorem 5.1 additive guarantee (generous multiple for one draw).
    assert abs(estimate - exact.estimate_frequency(QUERY, pattern)) <= (
        3 * sharded.additive_error_bound()
    )


def test_uniform_sample_merge_incompatible_configs_raise() -> None:
    base = UniformSampleEstimator(n_columns=D, sample_size=16)
    with pytest.raises(InvalidParameterError):
        base.merge(UniformSampleEstimator(n_columns=D, sample_size=32))
    with pytest.raises(InvalidParameterError):
        base.merge(
            UniformSampleEstimator(n_columns=D, sample_size=16, with_replacement=True)
        )


def test_all_subsets_baseline_merge_equals_union() -> None:
    def make() -> AllSubsetsBaseline:
        return AllSubsetsBaseline(n_columns=6, subset_sizes=[2])

    small_first = Dataset.random(n_rows=150, n_columns=6, seed=7)
    small_second = Dataset.random(n_rows=100, n_columns=6, seed=8)
    sharded = make().observe(small_first)
    sharded.merge(make().observe(small_second))
    single = make().observe(small_first.concatenate(small_second))
    query = ColumnQuery.of([1, 4], 6)
    assert sharded.estimate_fp(query, 0) == single.estimate_fp(query, 0)
    mismatched = AllSubsetsBaseline(n_columns=6, subset_sizes=[3])
    with pytest.raises(InvalidParameterError):
        sharded.merge(mismatched)


def test_snapshot_is_isolated_from_further_observation() -> None:
    estimator = ExactBaseline(n_columns=D).observe(FIRST)
    frozen = estimator.snapshot()
    before = frozen.estimate_fp(QUERY, 0)
    estimator.observe(SECOND)
    assert frozen.rows_observed == 300
    assert frozen.estimate_fp(QUERY, 0) == before
    assert estimator.rows_observed == 500


def test_merge_returns_self_for_chaining() -> None:
    first = ExactBaseline(n_columns=D).observe(FIRST)
    second = ExactBaseline(n_columns=D).observe(SECOND)
    assert first.merge(second) is first
