"""Round-trip property tests for the persistence layer.

The contract under test, for every registered estimator and sketch:
``from_bytes(to_bytes(x))`` (1) answers every supported query identically
to ``x`` and (2) continues absorbing the stream *bit-identically* to ``x``
under the same input — RNG state travels with the summary.  On top of
that: engine checkpoints restore coordinators and query services exactly,
scenario checkpoint bundles replay byte-identical results, transient
serving state (timings, caches, latency recorders) never crosses a pickle
boundary, and the process-pool ingest backend ships compact estimator
state instead of pickled ``Shard`` objects.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable

import pytest

from repro import (
    CHECKPOINT_FORMAT,
    SNAPSHOT_FORMAT,
    ColumnQuery,
    Coordinator,
    Dataset,
    ExactBaseline,
    QueryService,
    RowStream,
    SnapshotError,
    UniformSampleEstimator,
)
from repro.core.alpha_net import AlphaNetEstimator, SketchPlan
from repro.core.estimator import ProjectedFrequencyEstimator
from repro.core.exhaustive import AllSubsetsBaseline
from repro.engine.checkpoint import load_merged_estimator
from repro.engine.shard import Shard
from repro.experiments import RunParams, run_experiment, scenario_names
from repro.persistence import (
    from_bytes,
    load_envelope,
    registered_tags,
    snapshot_tag,
    to_bytes,
)
from repro.sketches import (
    AMSSketch,
    BJKSTSketch,
    BernoulliSampler,
    CountMinSketch,
    CountSketch,
    HyperLogLog,
    KMVSketch,
    LinearCounting,
    LpSampler,
    MisraGries,
    ReservoirSampler,
    SpaceSaving,
    StableLpSketch,
    WithReplacementSampler,
)

# Two overlapping streams with skew and tuple-valued items, so round trips
# cover both the "restore answers" and the "restore then keep ingesting"
# halves of the contract.
STREAM_ONE = [f"item-{i % 23}" for i in range(180)] + [("row", i % 7) for i in range(60)]
STREAM_TWO = [f"item-{i % 31}" for i in range(160)] + ["hot"] * 25


@dataclass(frozen=True)
class SketchCase:
    """One sketch family's round-trip contract."""

    name: str
    make: Callable[[], object]
    #: Probe returning a comparable view of the summary's query answers.
    probe: Callable[[object], object]
    #: Extra update stream fed after restoring (continuation check).
    continuation: list = field(default_factory=lambda: list(STREAM_TWO))


def _point_probe(sketch) -> tuple:
    candidates = [f"item-{i}" for i in range(35)] + [("row", i) for i in range(7)]
    return (
        tuple(sketch.estimate(item) for item in candidates),
        tuple(sorted(sketch.heavy_hitters(candidates, 5.0).items(), key=repr)),
    )


SKETCH_CASES = [
    SketchCase("kmv", lambda: KMVSketch(k=48, seed=1), lambda s: (s.estimate(), list(s.minimum_values()))),
    SketchCase("bjkst", lambda: BJKSTSketch(capacity=32, seed=1), lambda s: (s.estimate(), s.level)),
    SketchCase("hyperloglog", lambda: HyperLogLog(precision=9, seed=1), lambda s: s.estimate()),
    SketchCase("linear-counting", lambda: LinearCounting(bitmap_bits=2048, seed=1), lambda s: s.estimate()),
    SketchCase("countmin", lambda: CountMinSketch(width=64, depth=4, seed=1), _point_probe),
    SketchCase("countsketch", lambda: CountSketch(width=64, depth=5, seed=1), _point_probe),
    SketchCase("misra-gries", lambda: MisraGries(k=12), lambda s: s.tracked_items),
    SketchCase("space-saving", lambda: SpaceSaving(k=12), lambda s: tuple(s.tracked())),
    SketchCase("ams", lambda: AMSSketch(width=16, depth=3, seed=1), lambda s: s.estimate()),
    SketchCase("stable-lp", lambda: StableLpSketch(p=1.0, width=16, depth=3, seed=1), lambda s: s.estimate()),
    SketchCase("reservoir", lambda: ReservoirSampler(capacity=25, seed=1), lambda s: s.sample()),
    SketchCase("with-replacement", lambda: WithReplacementSampler(draws=12, seed=1), lambda s: s.sample()),
    SketchCase("bernoulli", lambda: BernoulliSampler(rate=0.25, seed=1), lambda s: s.sample()),
    SketchCase(
        "lp-sampler",
        lambda: LpSampler(p=1.0, levels=6, level_capacity=16, seed=1),
        lambda s: [(r.item, r.level, r.frequency_estimate) for r in (s.sample(), s.sample())],
    ),
]


@pytest.mark.parametrize("case", SKETCH_CASES, ids=lambda case: case.name)
def test_sketch_roundtrip_answers_and_continues_identically(case: SketchCase):
    """from_bytes(to_bytes(s)) answers like s and keeps ingesting like s."""
    original = case.make()
    original.update_many(STREAM_ONE)
    restored = from_bytes(to_bytes(original))
    assert type(restored) is type(original)
    assert restored.items_processed == original.items_processed
    assert case.probe(restored) == case.probe(original)
    # Continuation: the restored sketch must consume the rest of the stream
    # (and its RNG, where it has one) exactly as the never-serialized one.
    original.update_many(case.continuation)
    restored.update_many(case.continuation)
    assert case.probe(restored) == case.probe(original)
    assert restored.size_in_bits() == original.size_in_bits()


def test_every_registered_sketch_family_is_covered():
    """The parametrized cases cover every sketch tag in the registry."""
    covered = {snapshot_tag(case.make()) for case in SKETCH_CASES}
    sketch_tags = {tag for tag in registered_tags() if tag.startswith("sketch.")}
    assert covered == sketch_tags


def _estimator_probe(estimator, query: ColumnQuery) -> tuple:
    answers = []
    if estimator.supports("estimate_fp"):
        for p in (0, 1, 2):
            try:
                answers.append(("fp", p, estimator.estimate_fp(query, p)))
            except Exception as error:  # unsupported moment orders vary
                answers.append(("fp", p, type(error).__name__))
    if estimator.supports("estimate_frequency"):
        for pattern in ((0, 0, 0), (0, 1, 0), (1, 1, 1)):
            answers.append(
                ("freq", pattern, estimator.estimate_frequency(query, pattern))
            )
    if estimator.supports("heavy_hitters"):
        try:
            report = estimator.heavy_hitters(query, 0.1)
            answers.append(("hh", tuple(sorted(report.items()))))
        except Exception as error:
            answers.append(("hh", type(error).__name__))
    return tuple(answers)


def _mixed_plan(seed: int = 0) -> SketchPlan:
    return SketchPlan(
        distinct_factory=lambda index: KMVSketch(k=16, seed=seed + index),
        moment_factory=lambda index: StableLpSketch(
            p=2.0, width=16, depth=2, seed=seed + index
        ),
        point_factory=lambda index: CountMinSketch(
            width=32, depth=2, seed=seed + index
        ),
    )


ESTIMATOR_CASES = [
    ("usample-reservoir", lambda: UniformSampleEstimator(8, 64, seed=3)),
    (
        "usample-with-replacement",
        lambda: UniformSampleEstimator(8, 32, with_replacement=True, seed=3),
    ),
    ("alphanet-mixed", lambda: AlphaNetEstimator(8, alpha=0.3, plan=_mixed_plan())),
    ("exact", lambda: ExactBaseline(n_columns=8)),
    ("all-subsets", lambda: AllSubsetsBaseline(n_columns=8, subset_sizes=[2, 3])),
]


@pytest.mark.parametrize(
    "factory", [case[1] for case in ESTIMATOR_CASES],
    ids=[case[0] for case in ESTIMATOR_CASES],
)
def test_estimator_roundtrip_answers_and_continues_identically(factory):
    """Every registered estimator round-trips queries and continued ingest."""
    data = Dataset.random(n_rows=400, n_columns=8, seed=5)
    more = Dataset.random(n_rows=150, n_columns=8, seed=6)
    query = ColumnQuery.of([0, 3, 6], 8)
    original = factory().observe(data)
    restored = ProjectedFrequencyEstimator.from_bytes(original.to_bytes())
    assert type(restored) is type(original)
    assert restored.rows_observed == original.rows_observed
    assert restored.version == original.version
    assert restored.size_in_bits() == original.size_in_bits()
    assert _estimator_probe(restored, query) == _estimator_probe(original, query)
    # Bit-identical continued ingest under a fixed seed: both take the
    # vectorized block path and then the per-row path.
    original.observe(more)
    restored.observe(more)
    for row in [(0, 1, 0, 1, 0, 1, 0, 1), (1, 1, 1, 1, 0, 0, 0, 0)]:
        original.observe_row(row)
        restored.observe_row(row)
    assert _estimator_probe(restored, query) == _estimator_probe(original, query)


def test_every_registered_estimator_family_is_covered():
    """The estimator cases cover every estimator tag in the registry."""
    covered = {snapshot_tag(factory()) for _, factory in ESTIMATOR_CASES}
    estimator_tags = {
        tag for tag in registered_tags() if tag.startswith("estimator.")
    }
    assert covered == estimator_tags


def test_snapshot_envelope_is_schema_checked():
    """Garbage, wrong tags and unregistered types all fail loudly."""
    with pytest.raises(SnapshotError):
        from_bytes(b"not a snapshot at all")
    estimator = ExactBaseline(n_columns=3)
    estimator.observe_row((0, 1, 0))
    blob = estimator.to_bytes()
    envelope = load_envelope(blob)
    assert envelope["format"] == SNAPSHOT_FORMAT
    assert envelope["type"] == "estimator.exact"
    # A truncated payload cannot decompress.
    with pytest.raises(SnapshotError):
        from_bytes(blob[:-10])
    # Type-checked from_bytes on the wrong class refuses.
    with pytest.raises(SnapshotError):
        UniformSampleEstimator.from_bytes(blob)


# -- engine checkpoints ---------------------------------------------------------


def _engine(factory, **kwargs) -> Coordinator:
    coordinator = Coordinator(factory, **kwargs)
    data = Dataset.random(n_rows=500, n_columns=8, seed=2)
    coordinator.ingest(RowStream(data))
    return coordinator


def test_coordinator_checkpoint_roundtrip(tmp_path):
    """save_checkpoint/load_checkpoint restore answers and continued ingest."""
    engine = _engine(
        lambda: UniformSampleEstimator(8, 64, seed=4),
        n_shards=2,
        backend="serial",
        batch_size=128,
    )
    path = tmp_path / "engine.ckpt"
    info = engine.save_checkpoint(path)
    assert info.n_bytes == path.stat().st_size > 0
    assert info.rows_total == 500
    assert info.summary_bits == engine.merged_estimator.size_in_bits()
    restored = Coordinator.load_checkpoint(
        path, lambda: UniformSampleEstimator(8, 64, seed=4)
    )
    assert restored.n_shards == engine.n_shards
    assert restored.batch_size == engine.batch_size
    query = ColumnQuery.of([1, 4, 7], 8)
    assert (
        restored.merged_estimator.estimate_frequency(query, (0, 1, 0))
        == engine.merged_estimator.estimate_frequency(query, (0, 1, 0))
    )
    # Continued ingest is bit-identical: same stream into both engines.
    more = Dataset.random(n_rows=200, n_columns=8, seed=9)
    engine.ingest(RowStream(more))
    restored.ingest(RowStream(more))
    assert (
        restored.merged_estimator.estimate_frequency(query, (1, 0, 1))
        == engine.merged_estimator.estimate_frequency(query, (1, 0, 1))
    )


def test_checkpoint_restore_without_factory_serves_but_cannot_ingest(tmp_path):
    """A factory-less restore serves queries; further ingest raises."""
    from repro.errors import EstimationError

    engine = _engine(lambda: ExactBaseline(n_columns=8), n_shards=2, backend="serial")
    path = tmp_path / "engine.ckpt"
    engine.save_checkpoint(path)
    restored = Coordinator.load_checkpoint(path)
    query = ColumnQuery.of([0, 5], 8)
    assert restored.merged_estimator.estimate_fp(query, 0) == (
        engine.merged_estimator.estimate_fp(query, 0)
    )
    with pytest.raises(EstimationError):
        restored.ingest(RowStream(Dataset.random(10, 8, seed=1)))


def test_query_service_warm_start_from_checkpoint(tmp_path):
    """QueryService.from_checkpoint serves identically to the live service."""
    engine = _engine(lambda: ExactBaseline(n_columns=8), n_shards=2, backend="serial")
    path = tmp_path / "engine.ckpt"
    engine.save_checkpoint(path)
    live = engine.query_service()
    warm = QueryService.from_checkpoint(path)
    query = ColumnQuery.of([2, 4, 6], 8)
    assert warm.estimate_fp(query, 0) == live.estimate_fp(query, 0)
    assert warm.heavy_hitters(query, 0.05) == live.heavy_hitters(query, 0.05)
    assert load_merged_estimator(path).rows_observed == 500


def test_checkpoint_file_declares_the_checkpoint_format(tmp_path):
    """The checkpoint envelope carries the engine-checkpoint format tag."""
    engine = _engine(lambda: ExactBaseline(n_columns=8), n_shards=1, backend="serial")
    path = tmp_path / "engine.ckpt"
    engine.save_checkpoint(path)
    envelope = load_envelope(path.read_bytes())
    assert envelope["format"] == CHECKPOINT_FORMAT
    assert envelope["config"]["n_shards"] == 1
    assert len(envelope["shards"]) == 1


# -- transient-state / pickling regression --------------------------------------


def test_shard_pickle_never_carries_timing_state():
    """Transient wall-clock accounting is zeroed across pickle boundaries."""
    shard = Shard(0, ExactBaseline(n_columns=4))
    shard.ingest([(0, 1, 0, 1), (1, 1, 0, 0)])
    assert shard.ingest_seconds > 0
    clone = pickle.loads(pickle.dumps(shard))
    assert clone.ingest_seconds == 0.0
    assert clone.rows_ingested == shard.rows_ingested
    assert clone.estimator.rows_observed == 2


def test_query_service_pickle_never_carries_cache_or_recorders():
    """The LRU cache, hit counters and latency recorders stay per-process."""
    estimator = ExactBaseline(n_columns=4).observe(
        Dataset.random(n_rows=50, n_columns=4, seed=7)
    )
    service = QueryService(estimator)
    query = ColumnQuery.of([0, 2], 4)
    service.estimate_fp(query, 0)
    service.estimate_fp(query, 0)
    assert service.cache_info().hits == 1
    assert service.cache_info().size > 0
    assert service.stats() != {}
    clone = pickle.loads(pickle.dumps(service))
    info = clone.cache_info()
    assert (info.hits, info.misses, info.size, info.invalidations) == (0, 0, 0, 0)
    # Latency recorders reset too; only the (zeroed) cache entry remains.
    assert set(clone.stats()) == {"cache"}
    # The summary itself survives: the clone answers identically.
    assert clone.estimate_fp(query, 0) == service.estimate_fp(query, 0)


def test_process_backend_ships_estimator_state_not_shards(monkeypatch):
    """The process pool must never pickle a Shard (regression for the

    old protocol that shipped whole ``Shard`` objects — timing fields,
    caches and all — across the process boundary on every call)."""

    def forbid_shard_pickle(self):
        raise AssertionError("Shard must not be pickled by the process backend")

    monkeypatch.setattr(Shard, "__getstate__", forbid_shard_pickle)
    monkeypatch.setattr(Shard, "__reduce__", forbid_shard_pickle)
    data = Dataset.random(n_rows=300, n_columns=6, seed=3)
    serial = Coordinator(
        lambda: UniformSampleEstimator(6, 32, seed=8), n_shards=2, backend="serial"
    )
    serial.ingest(RowStream(data))
    parallel = Coordinator(
        lambda: UniformSampleEstimator(6, 32, seed=8),
        n_shards=2,
        backend="processes",
    )
    report = parallel.ingest(RowStream(data))
    assert report.rows_total == 300
    query = ColumnQuery.of([0, 3], 6)
    assert parallel.merged_estimator.estimate_frequency(query, (0, 1)) == (
        serial.merged_estimator.estimate_frequency(query, (0, 1))
    )


class _UnregisteredKMV(KMVSketch):
    """A sketch subclass that is deliberately NOT in the snapshot registry."""


def _unregistered_plan() -> SketchPlan:
    return SketchPlan(
        distinct_factory=lambda index: _UnregisteredKMV(k=16, seed=index)
    )


def test_process_backend_falls_back_to_pickle_for_unregistered_components():
    """An estimator whose nested sketches cannot snapshot still ingests in

    worker processes (travelling as a pickled estimator object — never as a
    Shard), matching the serial backend exactly."""
    data = Dataset.random(n_rows=200, n_columns=6, seed=4)
    query = ColumnQuery.of([1, 4], 6)
    results = []
    for backend in ("serial", "processes"):
        engine = Coordinator(
            lambda: AlphaNetEstimator(6, alpha=0.3, plan=_unregistered_plan()),
            n_shards=2,
            backend=backend,
        )
        report = engine.ingest(RowStream(data))
        assert report.rows_total == 200
        results.append(engine.merged_estimator.estimate_fp(query, 0))
    assert results[0] == results[1]


# -- scenario checkpoint bundles -------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_checkpoint_replay_is_exact(tmp_path, name):
    """--quick build → restore replays byte-identical metrics and tables."""
    bundle = tmp_path / f"{name}.ckpt"
    build = run_experiment(
        name, RunParams(quick=True, checkpoint_to=str(bundle))
    )
    restored = run_experiment(
        name, RunParams(quick=True, from_checkpoint=str(bundle))
    )
    assert restored.metrics == build.metrics
    assert restored.tables == build.tables
    for entry in build.checkpoints:
        assert entry["bytes_on_disk"] == (bundle / entry["file"]).stat().st_size
        assert entry["summary_bits"] >= 0
    payload = build.to_dict()
    if build.checkpoints:
        assert "checkpoints" in payload


def test_bundle_refuses_mismatched_parameters(tmp_path):
    """A --quick bundle cannot be replayed as a full run (and vice versa)."""
    bundle = tmp_path / "usample.ckpt"
    run_experiment(
        "usample-accuracy", RunParams(quick=True, checkpoint_to=str(bundle))
    )
    with pytest.raises(SnapshotError):
        run_experiment(
            "usample-accuracy", RunParams(quick=False, from_checkpoint=str(bundle))
        )
    with pytest.raises(SnapshotError):
        run_experiment(
            "bias-audit", RunParams(quick=True, from_checkpoint=str(bundle))
        )


def test_checkpoint_and_restore_params_are_mutually_exclusive(tmp_path):
    """RunParams refuses a run that both writes and reads a bundle."""
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        RunParams(
            checkpoint_to=str(tmp_path / "a"), from_checkpoint=str(tmp_path / "b")
        ).validate()
