"""Tests for the dataset / column-query data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.errors import AlphabetError, DimensionError, QueryError


class TestColumnQuery:
    def test_of_sorts_and_deduplicates(self):
        query = ColumnQuery.of([5, 1, 3, 1], 8)
        assert query.columns == (1, 3, 5)
        assert len(query) == 3

    def test_membership_and_iteration(self):
        query = ColumnQuery.of([2, 4], 6)
        assert 2 in query and 3 not in query
        assert list(query) == [2, 4]

    def test_all_columns(self):
        assert ColumnQuery.all_columns(4).columns == (0, 1, 2, 3)

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            ColumnQuery.of([], 4)

    def test_out_of_range_columns_rejected(self):
        with pytest.raises(QueryError):
            ColumnQuery.of([4], 4)
        with pytest.raises(QueryError):
            ColumnQuery.of([-1], 4)

    def test_complement(self):
        query = ColumnQuery.of([0, 2], 4)
        assert query.complement().columns == (1, 3)
        with pytest.raises(QueryError):
            ColumnQuery.all_columns(3).complement()

    def test_symmetric_difference_size(self):
        a = ColumnQuery.of([0, 1, 2], 6)
        b = ColumnQuery.of([2, 3], 6)
        assert a.symmetric_difference_size(b) == 3
        with pytest.raises(QueryError):
            a.symmetric_difference_size(ColumnQuery.of([0], 5))


class TestDatasetConstruction:
    def test_from_array_and_shape(self):
        dataset = Dataset([[0, 1], [1, 0], [1, 1]], alphabet_size=2)
        assert dataset.shape == (3, 2)
        assert dataset.n_rows == 3 and dataset.n_columns == 2
        assert len(dataset) == 3

    def test_from_words(self):
        dataset = Dataset.from_words([(0, 1, 2), (2, 1, 0)], alphabet_size=3)
        assert dataset.row(1) == (2, 1, 0)

    def test_random_respects_alphabet(self):
        dataset = Dataset.random(100, 5, alphabet_size=4, seed=0)
        array = dataset.to_array()
        assert array.min() >= 0 and array.max() <= 3

    def test_rejects_out_of_alphabet_values(self):
        with pytest.raises(AlphabetError):
            Dataset([[0, 2]], alphabet_size=2)

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(DimensionError):
            Dataset(np.zeros((3, 3, 3), dtype=int))
        with pytest.raises(DimensionError):
            Dataset(np.zeros((0, 3), dtype=int))

    def test_row_index_bounds(self):
        dataset = Dataset([[0, 1]], alphabet_size=2)
        with pytest.raises(DimensionError):
            dataset.row(5)


class TestProjection:
    def test_project_returns_restricted_dataset(self):
        dataset = Dataset([[1, 0, 1], [0, 1, 1]], alphabet_size=2)
        projected = dataset.project([0, 2])
        assert projected.shape == (2, 2)
        assert projected.row(0) == (1, 1)

    def test_iter_projected_rows_matches_project(self):
        dataset = Dataset.random(50, 6, seed=1)
        query = dataset.query([1, 4])
        via_iter = list(dataset.iter_projected_rows(query))
        via_project = list(dataset.project(query).iter_rows())
        assert via_iter == via_project

    def test_pattern_counts_sum_to_n(self):
        dataset = Dataset.random(200, 7, seed=2)
        counts = dataset.pattern_counts([0, 3, 6])
        assert sum(counts.values()) == 200

    def test_query_dimension_mismatch_rejected(self):
        dataset = Dataset.random(10, 4, seed=3)
        foreign = ColumnQuery.of([0], 9)
        with pytest.raises(QueryError):
            dataset.project(foreign)


class TestDatasetOperations:
    def test_concatenate(self):
        a = Dataset([[0, 1]], alphabet_size=2)
        b = Dataset([[1, 1], [0, 0]], alphabet_size=2)
        combined = a.concatenate(b)
        assert combined.n_rows == 3
        assert combined.row(2) == (0, 0)

    def test_concatenate_rejects_mismatched_shapes(self):
        a = Dataset([[0, 1]], alphabet_size=2)
        with pytest.raises(DimensionError):
            a.concatenate(Dataset([[0, 1, 1]], alphabet_size=2))
        with pytest.raises(AlphabetError):
            a.concatenate(Dataset([[0, 1]], alphabet_size=4))

    def test_size_in_bits(self):
        binary = Dataset.random(10, 8, alphabet_size=2, seed=0)
        qary = Dataset.random(10, 8, alphabet_size=5, seed=0)
        assert binary.size_in_bits() == 80
        assert qary.size_in_bits() == 240  # ceil(log2 5) = 3 bits per symbol

    def test_to_array_is_a_copy(self):
        dataset = Dataset([[0, 1]], alphabet_size=2)
        array = dataset.to_array()
        array[0, 0] = 1
        assert dataset.row(0) == (0, 1)
