"""Tests for repro.telemetry: registry, spans, exporters and instrumentation."""

from __future__ import annotations

import json
import math

import pytest

from repro import UniformSampleEstimator, telemetry
from repro.cli import main as cli_main
from repro.core.dataset import ColumnQuery, Dataset
from repro.engine.coordinator import Coordinator
from repro.engine.service import QueryService
from repro.errors import InvalidParameterError
from repro.experiments import RunParams, run_experiment
from repro.streaming.stream import RowStream
from repro.telemetry import (
    MetricsRegistry,
    SIZE_BUCKETS,
    Tracer,
    render_prometheus,
    render_span_tree,
    validate_telemetry_section,
    validate_trace_payload,
)


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Every test sees enabled telemetry with a fresh registry and tracer."""
    was_enabled = telemetry.enabled()
    telemetry.enable()
    with telemetry.scoped_registry():
        with telemetry.scoped_tracer():
            yield
    if not was_enabled:
        telemetry.disable()


# -- registry ---------------------------------------------------------------------


def test_counter_labels_and_series():
    registry = MetricsRegistry()
    counter = registry.counter("repro_rows_total", "rows")
    counter.inc(3, shard="0")
    counter.inc(shard="0")
    counter.inc(5, shard="1")
    assert counter.value(shard="0") == 4
    assert counter.value(shard="1") == 5
    assert counter.value(shard="9") == 0


def test_metric_name_validation():
    registry = MetricsRegistry()
    with pytest.raises(InvalidParameterError):
        registry.counter("bad-name")


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("repro_thing")
    with pytest.raises(InvalidParameterError):
        registry.gauge("repro_thing")


def test_histogram_bucket_boundaries_are_inclusive_upper_bounds():
    """A value equal to a bound lands in that bound's bucket (``le`` semantics)."""
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_sizes", buckets=(1.0, 2.0, 4.0, 8.0)
    )
    histogram.observe(1.0)  # == first bound -> bucket 0
    histogram.observe(1.5)  # -> bucket 1 (le=2)
    histogram.observe(4.0)  # == third bound -> bucket 2
    histogram.observe(100.0)  # above every bound -> +Inf bucket
    series = histogram.snapshot()
    assert list(series.bucket_counts) == [1, 1, 1, 0, 1]
    assert series.count == 4
    assert series.min == 1.0
    assert series.max == 100.0


def test_histogram_quantile_has_bucket_resolution():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_times", buckets=(0.001, 0.01, 0.1))
    for _ in range(99):
        histogram.observe(0.005)
    histogram.observe(0.05)
    assert histogram.quantile(0.5) == 0.01
    assert histogram.quantile(1.0) == 0.1
    assert math.isnan(registry.histogram("repro_empty").quantile(0.5))


def test_registry_merge_across_simulated_worker_registries():
    """Shard workers record into their own registry; the coordinator merges."""
    coordinator_side = MetricsRegistry()
    coordinator_side.counter("repro_rows_total").inc(10, shard="0")
    worker_states = []
    for shard in (1, 2):
        worker = MetricsRegistry()
        worker.counter("repro_rows_total").inc(10 * shard, shard=str(shard))
        worker.histogram("repro_block_rows", buckets=SIZE_BUCKETS).observe(
            64, count=shard
        )
        worker_states.append(worker.state_dict())
    for state in worker_states:
        coordinator_side.merge_state(state)
    counter = coordinator_side.counter("repro_rows_total")
    assert counter.value(shard="0") == 10
    assert counter.value(shard="1") == 10
    assert counter.value(shard="2") == 20
    merged = coordinator_side.histogram(
        "repro_block_rows", buckets=SIZE_BUCKETS
    ).snapshot()
    assert merged.count == 3  # count=1 from worker 1, count=2 from worker 2
    assert merged.total == 3 * 64


def test_registry_state_dict_round_trip():
    registry = MetricsRegistry()
    registry.counter("repro_c", "help").inc(2, k="v")
    registry.gauge("repro_g").set(1.5)
    registry.histogram("repro_h", buckets=(1.0, 2.0)).observe(1.2)
    clone = MetricsRegistry.from_state_dict(registry.state_dict())
    assert clone.state_dict() == registry.state_dict()


def test_gauge_merge_keeps_maximum():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.gauge("repro_peak_bits").set(100, estimator="E")
    right.gauge("repro_peak_bits").set(250, estimator="E")
    left.merge_state(right.state_dict())
    assert left.gauge("repro_peak_bits").value(estimator="E") == 250


# -- prometheus golden ------------------------------------------------------------


def test_prometheus_exposition_golden():
    registry = MetricsRegistry()
    registry.counter("repro_rows_total", "rows ingested").inc(7, shard="0")
    registry.gauge("repro_skew", "partition skew").set(1.25)
    registry.histogram("repro_lat", "latency", buckets=(0.1, 1.0)).observe(0.5)
    expected = "\n".join(
        [
            "# HELP repro_lat latency",
            "# TYPE repro_lat histogram",
            'repro_lat_bucket{le="0.1"} 0',
            'repro_lat_bucket{le="1"} 1',
            'repro_lat_bucket{le="+Inf"} 1',
            "repro_lat_sum 0.5",
            "repro_lat_count 1",
            "# HELP repro_rows_total rows ingested",
            "# TYPE repro_rows_total counter",
            'repro_rows_total{shard="0"} 7',
            "# HELP repro_skew partition skew",
            "# TYPE repro_skew gauge",
            "repro_skew 1.25",
            "",
        ]
    )
    assert render_prometheus(registry) == expected


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("repro_c").inc(1, path='a"b\\c')
    assert 'path="a\\"b\\\\c"' in render_prometheus(registry)


# -- spans ------------------------------------------------------------------------


def test_span_nesting_and_ordering():
    tracer = Tracer()
    with tracer.span("outer", phase="test"):
        with tracer.span("inner.first"):
            pass
        with tracer.span("inner.second"):
            pass
    payload = tracer.to_dict()
    assert validate_trace_payload(payload) == []
    names = [entry["name"] for entry in payload["spans"]]
    # to_dict() sorts by start time: parent first, children in open order.
    assert names == ["outer", "inner.first", "inner.second"]
    outer, first, second = payload["spans"]
    assert outer["parent_id"] is None
    assert first["parent_id"] == outer["span_id"]
    assert second["parent_id"] == outer["span_id"]
    assert first["start_seconds"] <= second["start_seconds"]
    assert outer["attrs"] == {"phase": "test"}


def test_span_records_exception_and_reraises():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (record,) = tracer.spans
    assert record.attrs["error"] == "ValueError"


def test_chrome_trace_export_shape():
    tracer = Tracer()
    with tracer.span("work", items=2):
        pass
    chrome = tracer.to_chrome()
    (event,) = chrome["traceEvents"]
    assert event["ph"] == "X"
    assert event["name"] == "work"
    assert event["dur"] >= 0
    assert event["args"] == {"items": 2}


def test_render_span_tree_indents_children():
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
    tree = render_span_tree(tracer)
    lines = tree.splitlines()
    assert lines[0].startswith("parent")
    assert lines[1].startswith("  child")


# -- disabled mode ----------------------------------------------------------------


def test_disabled_mode_records_nothing():
    telemetry.disable()
    try:
        assert isinstance(telemetry.get_registry(), telemetry.NullRegistry)
        metric = telemetry.get_registry().counter("repro_x")
        metric.inc(5)
        assert metric.value() == 0
        with telemetry.span("invisible"):
            pass
        assert telemetry.get_tracer().spans == []
        estimator = UniformSampleEstimator(n_columns=3, sample_size=8, seed=0)
        estimator.observe(Dataset.random(n_rows=32, n_columns=3, seed=0))
    finally:
        telemetry.enable()
    # Nothing leaked into the re-enabled default registry either.
    assert telemetry.get_registry().collect() == []


def test_disabled_mode_shares_one_null_metric():
    """The off switch compiles to one shared no-op object — no allocation."""
    telemetry.disable()
    try:
        registry = telemetry.get_registry()
        assert registry.counter("repro_a") is registry.histogram("repro_b")
        assert registry is telemetry.get_registry()
    finally:
        telemetry.enable()


# -- instrumented paths -----------------------------------------------------------


def _engine(n_shards: int = 2) -> Coordinator:
    return Coordinator(
        lambda: UniformSampleEstimator(n_columns=4, sample_size=32, seed=3),
        n_shards=n_shards,
        backend="serial",
    )


def test_ingest_records_metrics_and_spans():
    engine = _engine()
    report = engine.ingest(RowStream(Dataset.random(n_rows=120, n_columns=4, seed=1)))
    registry = telemetry.get_registry()
    assert (
        registry.counter("repro_ingest_rows_total").value(
            backend="serial", policy="round_robin"
        )
        == report.rows_total
    )
    assert registry.counter("repro_merge_total").value() == 1
    skew = registry.gauge("repro_partition_skew_ratio").value(policy="round_robin")
    assert skew >= 1.0
    names = [record.name for record in telemetry.get_tracer().spans]
    assert "coordinator.merge" in names
    assert "coordinator.ingest" in names


def test_query_service_cache_counters_and_invalidation():
    engine = _engine()
    data = Dataset.random(n_rows=100, n_columns=4, seed=2)
    engine.ingest(RowStream(data))
    service = engine.query_service(cache_size=16)
    query = ColumnQuery.of([0, 2], 4)
    service.estimate_fp(query, 0)
    service.estimate_fp(query, 0)
    info = service.cache_info()
    assert (info.hits, info.misses, info.invalidations) == (1, 1, 0)
    # More data merges in -> the summary version moves -> the next query
    # flushes the stale cache and counts one invalidation.
    engine.ingest(RowStream(Dataset.random(n_rows=50, n_columns=4, seed=5)))
    service.estimate_fp(query, 0)
    stats = service.stats()
    assert stats["cache"].invalidations == 1
    assert (stats["cache"].hits, stats["cache"].misses) == (1, 2)
    assert stats["fp"].count == 2
    registry = telemetry.get_registry()
    assert registry.counter("repro_query_cache_hits_total").value(kind="fp") == 1
    assert registry.counter("repro_query_cache_misses_total").value(kind="fp") == 2
    assert (
        registry.counter("repro_query_cache_invalidations_total").value(
            reason="stale"
        )
        == 1
    )


def test_manual_invalidate_counts():
    estimator = UniformSampleEstimator(n_columns=4, sample_size=32, seed=3)
    estimator.observe(Dataset.random(n_rows=40, n_columns=4, seed=4))
    service = QueryService(estimator)
    service.invalidate()
    assert service.cache_info().invalidations == 1
    registry = telemetry.get_registry()
    assert (
        registry.counter("repro_query_cache_invalidations_total").value(
            reason="manual"
        )
        == 1
    )


def test_process_backend_ships_worker_registries_back():
    engine = Coordinator(
        lambda: UniformSampleEstimator(n_columns=4, sample_size=32, seed=3),
        n_shards=2,
        backend="processes",
        batch_size=64,  # block ingest: the instrumented kernel path
    )
    report = engine.ingest(
        RowStream(Dataset.random(n_rows=200, n_columns=4, seed=6))
    )
    registry = telemetry.get_registry()
    blocks = registry.counter("repro_ingest_blocks_total").value(
        estimator="UniformSampleEstimator"
    )
    # The block counters are recorded inside the worker processes; their
    # registries ship back with the estimator snapshots and merge here.
    assert blocks >= 2
    assert report.rows_total == 200


def test_checkpoint_save_load_metrics_and_spans(tmp_path):
    engine = _engine()
    engine.ingest(RowStream(Dataset.random(n_rows=80, n_columns=4, seed=7)))
    path = tmp_path / "engine.ckpt"
    info = engine.save_checkpoint(path)
    QueryService.from_checkpoint(str(path))
    registry = telemetry.get_registry()
    assert (
        registry.counter("repro_checkpoint_bytes_total").value(op="save")
        == info.n_bytes
    )
    assert (
        registry.counter("repro_checkpoint_bytes_total").value(op="load")
        == info.n_bytes
    )
    names = [record.name for record in telemetry.get_tracer().spans]
    assert "checkpoint.save" in names
    assert "checkpoint.load" in names


# -- runner + CLI -----------------------------------------------------------------


def test_runner_emits_schema_valid_telemetry_section():
    result = run_experiment("usample-accuracy", RunParams(quick=True))
    section = result.to_dict()["telemetry"]
    assert validate_telemetry_section(section) == []
    assert section["ingest"]["sessions"] > 0
    assert section["ingest"]["rows_total"] > 0
    assert section["queries"]["count"] > 0
    assert section["peak_summary_bits"] > 0


def test_analytic_scenario_telemetry_section_is_valid_and_empty():
    result = run_experiment("figure1", RunParams(quick=True))
    section = result.to_dict()["telemetry"]
    assert validate_telemetry_section(section) == []
    assert section["ingest"]["sessions"] == 0
    assert section["peak_summary_bits"] == 0


def test_cli_trace_and_metrics_artifacts(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"
    code = cli_main(
        [
            "run",
            "usample-accuracy",
            "--quick",
            "--out",
            str(tmp_path / "results"),
            "--trace",
            str(trace_path),
            "--metrics",
            str(metrics_path),
        ]
    )
    assert code == 0
    payload = json.loads(trace_path.read_text())
    assert validate_trace_payload(payload) == []
    names = {entry["name"] for entry in payload["spans"]}
    assert {"experiment.run", "coordinator.ingest", "service.query"} <= names
    exposition = metrics_path.read_text()
    assert "# TYPE repro_ingest_rows_total counter" in exposition
    capsys.readouterr()


def test_cli_stats_renders_telemetry_table(tmp_path, capsys):
    out_dir = tmp_path / "results"
    assert cli_main(["run", "figure1", "--quick", "--out", str(out_dir)]) == 0
    capsys.readouterr()
    assert cli_main(["stats", "--out", str(out_dir)]) == 0
    printed = capsys.readouterr().out
    assert "figure1" in printed
    assert "rows/s" in printed
