"""End-to-end integration tests spanning multiple subsystems.

Each test exercises a realistic pipeline: generate a workload, stream it into
one or more estimators, issue late-arriving projection queries, and check the
answers against the exact reference and the paper's guarantees.
"""

from __future__ import annotations

import pytest

from repro.core.alpha_net import AlphaNetEstimator, SketchPlan
from repro.core.dataset import ColumnQuery, Dataset
from repro.core.exhaustive import ExactBaseline
from repro.core.frequency import FrequencyVector
from repro.core.problems import FrequencyEstimation, HeavyHitters
from repro.core.uniform_sample import UniformSampleEstimator
from repro.lowerbounds.f0_instance import build_f0_instance
from repro.lowerbounds.hh_instance import build_heavy_hitter_instance
from repro.lowerbounds.separation import measure_separation
from repro.streaming.memory import compare_space
from repro.streaming.runner import StreamRunner
from repro.streaming.stream import RowStream
from repro.workloads.bias import demographic_dataset
from repro.workloads.linkability import quasi_identifier_dataset, uniqueness_profile
from repro.workloads.queries import random_queries
from repro.workloads.synthetic import zipfian_rows


class TestBiasAuditPipeline:
    """The 'Bias and Diversity' motivating scenario, end to end."""

    def test_usample_finds_the_planted_overrepresented_group(self):
        data, truth = demographic_dataset(n_rows=4000, bias_strength=0.3, seed=1)
        estimator = UniformSampleEstimator.from_accuracy(
            n_columns=data.n_columns,
            epsilon=0.05,
            delta=0.01,
            alphabet_size=data.alphabet_size,
            seed=1,
        )
        estimator.observe(data)

        biased_columns = tuple(truth.overrepresented_group)
        query = ColumnQuery.of(truth.column_indices(biased_columns), data.n_columns)
        pattern = truth.group_pattern(biased_columns)

        # Point-query accuracy (Theorem 5.1 guarantee, with slack for delta).
        exact = FrequencyVector.from_dataset(data, query)
        estimate = estimator.estimate_frequency(query, pattern)
        assert abs(estimate - exact.frequency(pattern)) <= 3 * 0.05 * data.n_rows

        # Heavy-hitter report contains the planted group.
        report = estimator.heavy_hitters(query, phi=0.15, p=1.0)
        assert pattern in report

        # The formal problem object accepts the report.
        problem = HeavyHitters(phi=0.15, p=1.0, slack=3.0)
        assert problem.is_acceptable(report, exact)

        # And the summary is far smaller than the raw data.
        comparison = compare_space(
            estimator.size_in_bits(),
            data.n_rows,
            data.n_columns,
            data.alphabet_size,
        )
        assert comparison.saves_space


class TestLinkabilityPipeline:
    """The 'Privacy and Linkability' motivating scenario, end to end."""

    def test_alpha_net_estimates_distinct_combinations_for_late_queries(self):
        data, schema = quasi_identifier_dataset(n_rows=1200, seed=2)
        # Binarise the identifier columns (value parity) so the estimator's
        # alphabet stays binary and the net stays small.
        reduced = Dataset(data.to_array() % 2, alphabet_size=2)
        d = reduced.n_columns
        estimator = AlphaNetEstimator(
            n_columns=d, alpha=0.25, plan=SketchPlan.default_f0(epsilon=0.2, seed=2)
        )
        estimator.observe(reduced)
        for query in random_queries(d=d, query_size=2, count=4, seed=3):
            exact = uniqueness_profile(reduced, query).distinct_combinations
            estimate = estimator.estimate_fp(query, 0)
            guarantee = estimator.guarantee(p=0, beta=1.5).approximation_factor
            assert estimate / exact <= guarantee
            assert exact / max(estimate, 1e-9) <= guarantee


class TestRunnerComparisonPipeline:
    def test_space_accuracy_ordering_between_estimators(self):
        data = zipfian_rows(1500, 8, distinct_patterns=30, exponent=1.4, seed=4)
        runner = StreamRunner(
            RowStream(data),
            {
                "exact": lambda: ExactBaseline(n_columns=8),
                "alpha-net": lambda: AlphaNetEstimator(
                    n_columns=8,
                    alpha=0.25,
                    plan=SketchPlan.default_f0(epsilon=0.25, seed=5),
                ),
            },
        )
        queries = random_queries(d=8, query_size=2, count=3, seed=6)
        report = runner.run_fp_queries(queries, p=0)
        # The exact baseline is error-free; the alpha-net answer is within its
        # Theorem 6.5 guarantee but uses bounded space per query subset.
        assert report.worst_multiplicative_error("exact") == pytest.approx(1.0)
        assert report.worst_multiplicative_error("alpha-net") <= 1.5 * 2 ** (0.25 * 8)


class TestLowerBoundProtocolPipeline:
    def test_f0_sketch_cannot_cheat_the_reduction_without_space(self):
        """A small uniform row sample fails the Theorem 4.1 distinguishing task.

        This is the operational content of the lower bound: an estimator
        whose size does not grow with ``|C|`` answers the membership question
        essentially at chance, while the exact (full-space) answer always
        decides it.
        """

        def exact_statistic(membership: bool, seed: int) -> float:
            instance = build_f0_instance(
                d=10, k=3, alphabet_size=5, membership=membership, code_size=40, seed=seed
            )
            return instance.exact_f0()

        exact_summary = measure_separation(exact_statistic, trials=3)
        assert exact_summary.separable()

        def sampled_statistic(membership: bool, seed: int) -> float:
            instance = build_f0_instance(
                d=10, k=3, alphabet_size=5, membership=membership, code_size=40, seed=seed
            )
            estimator = UniformSampleEstimator(
                n_columns=10, sample_size=32, alphabet_size=5, seed=seed
            )
            estimator.observe(instance.dataset)
            return estimator.estimate_fp(instance.query, 0)

        sampled_summary = measure_separation(sampled_statistic, trials=3)
        # The tiny sample's distinct-count plug-in estimate collapses the gap
        # far below the true Q/k separation.
        assert sampled_summary.mean_gap < exact_summary.mean_gap

    def test_heavy_hitter_instance_defeats_small_sample_but_not_exact(self):
        exact_decisions = []
        for membership in (True, False):
            instance = build_heavy_hitter_instance(
                d=30, epsilon=0.3, gamma=0.05, p=2.0, membership=membership, seed=7
            )
            exact_decisions.append(instance.is_zero_pattern_heavy() is membership)
        assert all(exact_decisions)


class TestProblemSpecsAgainstEstimators:
    def test_frequency_estimation_problem_accepts_usample_answers(self):
        data = zipfian_rows(3000, 9, distinct_patterns=25, exponent=1.3, seed=8)
        estimator = UniformSampleEstimator.from_accuracy(
            n_columns=9, epsilon=0.05, delta=0.02, seed=8
        )
        estimator.observe(data)
        query = ColumnQuery.of([0, 2, 4], 9)
        exact = FrequencyVector.from_dataset(data, query)
        top_pattern = max(exact.counts, key=exact.counts.get)
        problem = FrequencyEstimation(pattern=top_pattern, p=1.0, phi=0.2)
        estimate = estimator.estimate_frequency(query, top_pattern)
        assert problem.is_acceptable(estimate, exact)
