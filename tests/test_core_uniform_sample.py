"""Tests for the uniform-sampling estimator of Theorem 5.1 / Corollary 5.2."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery
from repro.core.frequency import FrequencyVector
from repro.core.uniform_sample import UniformSampleEstimator, sample_size_for
from repro.errors import EstimationError, InvalidParameterError


class TestSampleSizeFormula:
    def test_scales_inverse_quadratically_in_epsilon(self):
        assert sample_size_for(0.05) > sample_size_for(0.1) > sample_size_for(0.2)
        assert sample_size_for(0.1) >= 4 * sample_size_for(0.2) * 0.9

    def test_independent_of_n_and_d(self):
        # The key point of Theorem 5.1: the bound involves only epsilon, delta.
        assert sample_size_for(0.1, 0.01) == sample_size_for(0.1, 0.01)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sample_size_for(0.0)
        with pytest.raises(InvalidParameterError):
            sample_size_for(0.1, delta=1.0)


class TestFrequencyEstimation:
    @pytest.mark.parametrize("with_replacement", [False, True])
    def test_additive_error_within_epsilon_n(self, zipfian_dataset, with_replacement):
        epsilon = 0.05
        estimator = UniformSampleEstimator.from_accuracy(
            n_columns=zipfian_dataset.n_columns,
            epsilon=epsilon,
            delta=0.01,
            with_replacement=with_replacement,
            seed=3,
        )
        estimator.observe(zipfian_dataset)
        query = ColumnQuery.of([0, 2, 5, 8], zipfian_dataset.n_columns)
        exact = FrequencyVector.from_dataset(zipfian_dataset, query)
        budget = 3 * epsilon * zipfian_dataset.n_rows  # 3x slack for the delta tail
        for pattern in list(exact.observed_patterns())[:10]:
            estimate = estimator.estimate_frequency(query, pattern)
            assert abs(estimate - exact.frequency(pattern)) <= budget

    def test_estimate_of_unseen_pattern_is_small(self, zipfian_dataset):
        estimator = UniformSampleEstimator(
            n_columns=zipfian_dataset.n_columns, sample_size=400, seed=1
        )
        estimator.observe(zipfian_dataset)
        query = ColumnQuery.of([0, 1, 2], zipfian_dataset.n_columns)
        exact = FrequencyVector.from_dataset(zipfian_dataset, query)
        unseen = next(
            pattern
            for pattern in [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)]
            if exact.frequency(pattern) == 0
        ) if any(
            exact.frequency(p) == 0
            for p in [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)]
        ) else None
        if unseen is not None:
            assert estimator.estimate_frequency(query, unseen) == 0.0

    def test_query_before_observation_fails(self):
        estimator = UniformSampleEstimator(n_columns=4, sample_size=10)
        with pytest.raises(EstimationError):
            estimator.estimate_frequency(ColumnQuery.of([0], 4), (0,))

    def test_pattern_length_must_match_query(self, small_binary_dataset):
        estimator = UniformSampleEstimator(n_columns=8, sample_size=50)
        estimator.observe(small_binary_dataset)
        with pytest.raises(EstimationError):
            estimator.estimate_frequency(ColumnQuery.of([0, 1], 8), (0, 1, 1))

    def test_row_width_validation(self):
        estimator = UniformSampleEstimator(n_columns=4, sample_size=10)
        with pytest.raises(EstimationError):
            estimator.observe_row((0, 1))


class TestHeavyHitters:
    def test_planted_heavy_hitters_are_recalled(self, planted_dataset):
        dataset, planted = planted_dataset
        estimator = UniformSampleEstimator(
            n_columns=dataset.n_columns, sample_size=600, seed=2
        )
        estimator.observe(dataset)
        query = ColumnQuery.all_columns(dataset.n_columns)
        report = estimator.heavy_hitters(query, phi=0.1, p=1.0)
        for pattern, count in planted.items():
            if count >= 0.15 * dataset.n_rows:
                assert pattern in report

    def test_no_wildly_light_false_positives(self, planted_dataset):
        dataset, _ = planted_dataset
        estimator = UniformSampleEstimator(
            n_columns=dataset.n_columns, sample_size=600, seed=4
        )
        estimator.observe(dataset)
        query = ColumnQuery.all_columns(dataset.n_columns)
        exact = FrequencyVector.from_dataset(dataset, query)
        report = estimator.heavy_hitters(query, phi=0.1, p=1.0)
        for pattern in report:
            assert exact.frequency(pattern) >= 0.02 * dataset.n_rows

    def test_fractional_p_supported(self, planted_dataset):
        dataset, planted = planted_dataset
        estimator = UniformSampleEstimator(
            n_columns=dataset.n_columns, sample_size=600, seed=5
        )
        estimator.observe(dataset)
        query = ColumnQuery.all_columns(dataset.n_columns)
        report = estimator.heavy_hitters(query, phi=0.05, p=0.5)
        # ||f||_0.5 >= ||f||_1, so thresholds are higher; the top planted
        # pattern still has a large share and must appear.
        top_pattern = max(planted, key=planted.get)
        assert top_pattern in report or planted[top_pattern] < 0.2 * dataset.n_rows

    def test_p_above_one_is_refused(self, small_binary_dataset):
        # Theorem 5.3: no small-space algorithm exists for p > 1, and the
        # estimator makes that explicit instead of answering badly.
        estimator = UniformSampleEstimator(n_columns=8, sample_size=50)
        estimator.observe(small_binary_dataset)
        with pytest.raises(EstimationError):
            estimator.heavy_hitters(ColumnQuery.of([0, 1], 8), phi=0.1, p=2.0)

    def test_phi_validation(self, small_binary_dataset):
        estimator = UniformSampleEstimator(n_columns=8, sample_size=50)
        estimator.observe(small_binary_dataset)
        with pytest.raises(InvalidParameterError):
            estimator.heavy_hitters(ColumnQuery.of([0], 8), phi=0.0)


class TestPlugInMoments:
    def test_f1_is_exact(self, small_binary_dataset):
        estimator = UniformSampleEstimator(n_columns=8, sample_size=64, seed=0)
        estimator.observe(small_binary_dataset)
        assert estimator.estimate_fp(ColumnQuery.of([0, 1], 8), 1) == float(
            small_binary_dataset.n_rows
        )

    def test_f0_plugin_is_a_lower_bound(self, small_binary_dataset):
        estimator = UniformSampleEstimator(n_columns=8, sample_size=64, seed=0)
        estimator.observe(small_binary_dataset)
        query = ColumnQuery.of([0, 1, 2, 3, 4], 8)
        exact = FrequencyVector.from_dataset(small_binary_dataset, query)
        assert estimator.estimate_fp(query, 0) <= exact.distinct_patterns()

    def test_space_is_independent_of_stream_length(self):
        small = UniformSampleEstimator(n_columns=10, sample_size=100)
        big = UniformSampleEstimator(n_columns=10, sample_size=100)
        small.observe([tuple([0] * 10)] * 50)
        big.observe([tuple([0] * 10)] * 5000)
        assert small.size_in_bits() == big.size_in_bits()

    def test_invalid_sample_size(self):
        with pytest.raises(InvalidParameterError):
            UniformSampleEstimator(n_columns=4, sample_size=0)
