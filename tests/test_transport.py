"""Tests for the transport layer: frames, shared memory, resident + socket pools.

The load-bearing property is the transport contract of the resident and
socket backends: they replay exactly the ``observe_rows`` call sequence of
the serial backend, so the merged summary comes back **byte-identical**
(``to_bytes()``-equal) to serial ingestion of the same stream — across
estimator families, repeated ingests and checkpoint/restore mid-stream.
The fault half pins the failure contract: a dead worker surfaces as
:class:`~repro.errors.EstimationError` naming the shard and backend, and
the coordinator stays usable afterwards.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro import (
    AlphaNetEstimator,
    ColumnQuery,
    Coordinator,
    Dataset,
    EstimationError,
    ExactBaseline,
    InvalidParameterError,
    RowStream,
    SketchPlan,
    UniformSampleEstimator,
)
from repro.engine.resilience import FaultPlan, FaultRule, installed_fault_plan
from repro.engine.transport import (
    RING_SLOTS,
    ShmReader,
    ShmRing,
    SocketShardClient,
    decode_frame,
    encode_frame,
    spawn_local_servers,
)
from repro.errors import TransportError

D = 6
DATA = Dataset.random(n_rows=500, n_columns=D, seed=11)
MORE = Dataset.random(n_rows=300, n_columns=D, seed=12)
QUERY = ColumnQuery.of([0, 2, 4], D)


def _exact_factory() -> ExactBaseline:
    return ExactBaseline(n_columns=D)


def _usample_factory() -> UniformSampleEstimator:
    return UniformSampleEstimator(n_columns=D, sample_size=64, seed=7)


def _alpha_factory() -> AlphaNetEstimator:
    return AlphaNetEstimator(
        n_columns=D, alpha=0.4, plan=SketchPlan.default_f0(epsilon=0.4, seed=3)
    )


FAMILIES = {
    "exact": _exact_factory,
    "usample": _usample_factory,
    "alpha": _alpha_factory,
}


@pytest.fixture(scope="module")
def loopback_workers():
    """Two forked loopback shard servers, shut down after the module."""
    addresses, processes = spawn_local_servers(2)
    yield addresses
    for address in addresses:
        try:
            SocketShardClient(address).shutdown_server()
        except (TransportError, ConnectionError, OSError):
            pass
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - teardown hardening
            process.terminate()


def _merged_bytes(factory, backend: str, streams, addresses=None, **kwargs) -> bytes:
    coordinator = Coordinator(
        factory,
        n_shards=2,
        backend=backend,
        worker_addresses=addresses,
        # Pin the serial arm to the same blocking as the transport arms:
        # the estimator `version` counter counts observe *calls*, so
        # bit-identity is defined at equal batch_size.
        batch_size=kwargs.pop("batch_size", 256),
        **kwargs,
    )
    try:
        for stream in streams:
            coordinator.ingest(stream)
        return coordinator.merged_estimator.to_bytes()
    finally:
        coordinator.close()


# -- frame codec ----------------------------------------------------------------


def test_frame_roundtrip_preserves_header_and_payload() -> None:
    frame = encode_frame({"type": "load", "shard": 3}, b"\x00snapshot\xff")
    header, payload = decode_frame(frame)
    assert header["type"] == "load"
    assert header["shard"] == 3
    assert header["v"] == "repro/transport@1"
    assert payload == b"\x00snapshot\xff"


def test_frame_rejects_unknown_type_and_bad_version() -> None:
    with pytest.raises(TransportError, match="unknown transport message type"):
        encode_frame({"type": "teleport"})
    frame = bytearray(encode_frame({"type": "ok"}))
    # Forge a frame claiming a different protocol version.
    forged = frame.replace(b"repro/transport@1", b"repro/transport@9")
    with pytest.raises(TransportError, match="version mismatch"):
        decode_frame(bytes(forged))


def test_frame_rejects_truncation() -> None:
    frame = encode_frame({"type": "snapshot"})
    with pytest.raises(TransportError, match="truncated"):
        decode_frame(frame[:2])
    with pytest.raises(TransportError, match="truncated"):
        decode_frame(frame[:-3])


# -- shared-memory ring ---------------------------------------------------------


def test_shm_ring_place_and_read_roundtrip() -> None:
    ring = ShmRing(slots=RING_SLOTS, slot_bytes=1 << 12)
    reader = ShmReader()
    try:
        blocks = [
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.ones((2, 4), dtype=np.int64) * 7,
            np.zeros((1, 4), dtype=np.int64),
        ]
        for index, block in enumerate(blocks):
            descriptor = ring.place(block)
            assert descriptor["slot"] == index % RING_SLOTS
            out = reader.read(descriptor)
            np.testing.assert_array_equal(out, block)
            # The reader hands back an independent copy, not a live view.
            out[0, 0] = -1
            np.testing.assert_array_equal(reader.read(descriptor), block)
    finally:
        reader.close()
        ring.close(unlink=True)


def test_shm_ring_regrows_for_oversized_blocks() -> None:
    ring = ShmRing(slots=RING_SLOTS, slot_bytes=1 << 10)
    reader = ShmReader()
    try:
        big = np.arange(4096, dtype=np.int64).reshape(512, 8)  # 32 KiB
        assert ring.needs_regrow(big)
        old_name = ring.name
        ring.regrow(big.nbytes)
        assert ring.name != old_name
        assert not ring.needs_regrow(big)
        np.testing.assert_array_equal(reader.read(ring.place(big)), big)
    finally:
        reader.close()
        ring.close(unlink=True)


def test_shm_reader_reports_vanished_segment() -> None:
    reader = ShmReader()
    descriptor = {
        "name": "repro-never-created",
        "slot": 0,
        "offset": 0,
        "nbytes": 8,
        "shape": [1, 1],
        "dtype": "<i8",
    }
    with pytest.raises(TransportError, match="vanished"):
        reader.read(descriptor)


# -- differential harness: resident ---------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_resident_backend_is_bit_identical_to_serial(family: str) -> None:
    factory = FAMILIES[family]
    serial = _merged_bytes(factory, "serial", [RowStream(DATA)])
    resident = _merged_bytes(factory, "resident", [RowStream(DATA)])
    assert resident == serial


def test_resident_repeated_ingest_matches_serial() -> None:
    streams = [RowStream(DATA), RowStream(MORE)]
    serial = _merged_bytes(_alpha_factory, "serial", streams)
    resident = _merged_bytes(_alpha_factory, "resident", streams)
    assert resident == serial


def test_resident_checkpoint_restore_mid_stream_matches_serial(tmp_path) -> None:
    """Ingest, checkpoint, restore, continue ingesting — still bit-identical."""
    serial = _merged_bytes(_usample_factory, "serial", [RowStream(DATA), RowStream(MORE)])
    coordinator = Coordinator(
        _usample_factory, n_shards=2, backend="resident", batch_size=256
    )
    try:
        coordinator.ingest(RowStream(DATA))
        path = tmp_path / "mid.ckpt"
        coordinator.save_checkpoint(path)
    finally:
        coordinator.close()
    restored = Coordinator.load_checkpoint(path, _usample_factory)
    try:
        assert restored.backend == "resident"
        restored.ingest(RowStream(MORE))
        assert restored.merged_estimator.to_bytes() == serial
    finally:
        restored.close()


def test_resident_bytes_shipped_accounting() -> None:
    coordinator = Coordinator(_exact_factory, n_shards=2, backend="resident")
    try:
        report = coordinator.ingest(RowStream(DATA))
    finally:
        coordinator.close()
    assert len(report.bytes_shipped_per_shard) == 2
    assert all(shipped > 0 for shipped in report.bytes_shipped_per_shard)
    serial_report = Coordinator(_exact_factory, n_shards=2, backend="serial").ingest(
        RowStream(DATA)
    )
    assert serial_report.bytes_shipped_per_shard == (0, 0)


def test_resident_pool_persists_across_ingests() -> None:
    coordinator = Coordinator(_exact_factory, n_shards=2, backend="resident")
    try:
        coordinator.ingest(RowStream(DATA))
        pool = coordinator._resident_pool
        assert pool is not None
        pids = [process.pid for process in pool.processes]
        coordinator.ingest(RowStream(MORE))
        assert coordinator._resident_pool is pool
        assert [process.pid for process in pool.processes] == pids
    finally:
        coordinator.close()
    assert coordinator._resident_pool is None


# -- differential harness: sockets ----------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_socket_backend_is_bit_identical_to_serial(
    family: str, loopback_workers
) -> None:
    factory = FAMILIES[family]
    serial = _merged_bytes(factory, "serial", [RowStream(DATA)])
    remote = _merged_bytes(
        factory, "sockets", [RowStream(DATA)], addresses=loopback_workers
    )
    assert remote == serial


def test_socket_repeated_ingest_matches_serial(loopback_workers) -> None:
    streams = [RowStream(DATA), RowStream(MORE)]
    serial = _merged_bytes(_alpha_factory, "serial", streams)
    remote = _merged_bytes(
        _alpha_factory, "sockets", streams, addresses=loopback_workers
    )
    assert remote == serial


def test_socket_bytes_shipped_accounting(loopback_workers) -> None:
    coordinator = Coordinator(
        _exact_factory,
        n_shards=2,
        backend="sockets",
        worker_addresses=loopback_workers,
    )
    try:
        report = coordinator.ingest(RowStream(DATA))
    finally:
        coordinator.close()
    assert len(report.bytes_shipped_per_shard) == 2
    # Socket blocks travel inline, so the framed bytes dominate the row
    # bytes (each shard ships about half the int64 table).
    row_bytes_per_shard = DATA.n_rows * D * 8 // 2
    assert all(
        shipped > row_bytes_per_shard // 2
        for shipped in report.bytes_shipped_per_shard
    )


def test_socket_backend_requires_matching_addresses() -> None:
    with pytest.raises(InvalidParameterError, match="worker_addresses"):
        Coordinator(_exact_factory, n_shards=2, backend="sockets").ingest(
            RowStream(DATA)
        )
    coordinator = Coordinator(
        _exact_factory,
        n_shards=2,
        backend="sockets",
        worker_addresses=("127.0.0.1:1",),
    )
    with pytest.raises(InvalidParameterError, match="one worker address per shard"):
        coordinator.ingest(RowStream(DATA))


# -- fault injection ------------------------------------------------------------


def test_resident_worker_crash_surfaces_and_coordinator_recovers() -> None:
    # Explicit fail-fast: the pre-resilience contract where a dead worker
    # tears the pool down.  The default policy now respawns and replays
    # instead (covered in tests/test_resilience.py).
    coordinator = Coordinator(
        _exact_factory, n_shards=2, backend="resident", batch_size=256,
        resilience={"recovery": {"mode": "fail-fast"}},
    )
    try:
        coordinator.ingest(RowStream(DATA))
        victim = coordinator._resident_pool.processes[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        with pytest.raises(
            EstimationError, match=r"shard 1 .*'resident'"
        ) as excinfo:
            coordinator.ingest(RowStream(MORE))
        assert not isinstance(excinfo.value, TransportError)
        # The broken pool was torn down; the next ingest respawns workers.
        assert coordinator._resident_pool is None
        coordinator.ingest(RowStream(MORE))
        expected = _merged_bytes(
            _exact_factory, "serial", [RowStream(DATA), RowStream(MORE)]
        )
        assert coordinator.merged_estimator.to_bytes() == expected
    finally:
        coordinator.close()


def _exit_mid_ingest(payload, bucket):  # pragma: no cover - runs in a worker
    os._exit(3)


def test_process_backend_wraps_broken_pool(monkeypatch) -> None:
    from repro.engine import coordinator as coordinator_module

    monkeypatch.setattr(
        coordinator_module, "_ingest_estimator_state", _exit_mid_ingest
    )
    coordinator = Coordinator(_exact_factory, n_shards=2, backend="processes")
    with pytest.raises(EstimationError, match=r"'processes' backend"):
        coordinator.ingest(RowStream(DATA))


def test_socket_truncated_frame_mid_payload_recovers(loopback_workers) -> None:
    """A frame cut off mid-payload kills the connection, not the run.

    The server drops the mangled connection; the client-side supervisor
    reconnects (the server survives), reloads the basis and replays, so
    the merged bytes still equal serial.
    """
    serial = _merged_bytes(
        _exact_factory, "serial", [RowStream(DATA)], batch_size=64
    )
    plan = FaultPlan([FaultRule(action="truncate", shard=0, frame=3)])
    with installed_fault_plan(plan):
        coordinator = Coordinator(
            _exact_factory,
            n_shards=2,
            backend="sockets",
            worker_addresses=loopback_workers,
            batch_size=64,
            resilience={"retry": {"max_attempts": 2, "base_delay": 0.01}},
        )
        try:
            report = coordinator.ingest(RowStream(DATA))
            assert report.recoveries >= 1
            assert report.shards_lost == ()
            assert coordinator.merged_estimator.to_bytes() == serial
        finally:
            coordinator.close()


def test_socket_corrupted_header_recovers(loopback_workers) -> None:
    """Flipped header-JSON bytes surface as a decode error server-side."""
    serial = _merged_bytes(
        _exact_factory, "serial", [RowStream(DATA)], batch_size=64
    )
    plan = FaultPlan([FaultRule(action="corrupt", shard=1, frame=2)])
    with installed_fault_plan(plan):
        coordinator = Coordinator(
            _exact_factory,
            n_shards=2,
            backend="sockets",
            worker_addresses=loopback_workers,
            batch_size=64,
            resilience={"retry": {"max_attempts": 2, "base_delay": 0.01}},
        )
        try:
            report = coordinator.ingest(RowStream(DATA))
            assert report.recoveries >= 1
            assert coordinator.merged_estimator.to_bytes() == serial
        finally:
            coordinator.close()


def test_resident_worker_hang_past_deadline_recovers(tmp_path) -> None:
    """A worker sleeping past the ingest deadline is reaped + respawned."""
    serial = _merged_bytes(
        _exact_factory, "serial", [RowStream(DATA)], batch_size=64
    )
    plan = FaultPlan(
        [FaultRule(action="hang", shard=1, after_blocks=2, seconds=5.0)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        coordinator = Coordinator(
            _exact_factory,
            n_shards=2,
            backend="resident",
            batch_size=64,
            resilience={"deadlines": {"ingest": 0.5}},
        )
        try:
            report = coordinator.ingest(RowStream(DATA))
            assert report.recoveries >= 1
            assert coordinator.merged_estimator.to_bytes() == serial
        finally:
            coordinator.close()


def test_resident_dropped_frame_breaches_deadline_and_recovers() -> None:
    """A silently dropped block never acks; the deadline converts the
    missing ack into a recovery instead of an undercounted summary."""
    serial = _merged_bytes(
        _exact_factory, "serial", [RowStream(DATA)], batch_size=64
    )
    plan = FaultPlan([FaultRule(action="drop", shard=0, frame=2)])
    with installed_fault_plan(plan):
        coordinator = Coordinator(
            _exact_factory,
            n_shards=2,
            backend="resident",
            batch_size=64,
            resilience={"deadlines": {"ingest": 0.75}},
        )
        try:
            report = coordinator.ingest(RowStream(DATA))
            assert report.recoveries >= 1
            assert coordinator.merged_estimator.to_bytes() == serial
        finally:
            coordinator.close()


def test_socket_disconnect_mid_ingest_fail_fast_raises(tmp_path) -> None:
    """Under fail-fast, a mid-ingest disconnect is a precise error."""
    plan = FaultPlan(
        [FaultRule(action="crash", shard=1, after_blocks=1)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        # Servers forked here inherit the installed plan.
        addresses, processes = spawn_local_servers(2)
        coordinator = Coordinator(
            _exact_factory,
            n_shards=2,
            backend="sockets",
            worker_addresses=addresses,
            batch_size=64,
            resilience={"recovery": {"mode": "fail-fast"}},
        )
        try:
            with pytest.raises(EstimationError, match=r"shard 1 .*'sockets'"):
                coordinator.ingest(RowStream(DATA))
        finally:
            coordinator.close()
            for address in addresses:
                try:
                    SocketShardClient(address).shutdown_server()
                except (TransportError, ConnectionError, OSError):
                    pass
            for process in processes:
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - teardown
                    process.terminate()


def test_transport_rejects_unsnapshottable_estimators() -> None:
    from repro.core.estimator import ProjectedFrequencyEstimator

    class Opaque(ProjectedFrequencyEstimator):
        def _observe(self, row) -> None:
            pass

        def size_in_bits(self) -> int:
            return 0

        def _merge_summaries(self, other) -> None:
            pass

    coordinator = Coordinator(
        lambda: Opaque(n_columns=D), n_shards=2, backend="resident"
    )
    with pytest.raises(EstimationError, match="snapshot bytes"):
        coordinator.ingest(RowStream(DATA))
