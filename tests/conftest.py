"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.core.frequency import FrequencyVector
from repro.workloads.synthetic import planted_heavy_hitters, zipfian_rows


@pytest.fixture(scope="session")
def small_binary_dataset() -> Dataset:
    """A deterministic 500 x 8 binary dataset."""
    return Dataset.random(n_rows=500, n_columns=8, alphabet_size=2, seed=11)


@pytest.fixture(scope="session")
def qary_dataset() -> Dataset:
    """A deterministic 400 x 6 dataset over a 4-symbol alphabet."""
    return Dataset.random(n_rows=400, n_columns=6, alphabet_size=4, seed=7)


@pytest.fixture(scope="session")
def zipfian_dataset() -> Dataset:
    """A skewed 3000 x 10 binary dataset with heavy-hitter structure."""
    return zipfian_rows(
        n_rows=3000, n_columns=10, distinct_patterns=40, exponent=1.3, seed=3
    )


@pytest.fixture(scope="session")
def planted_dataset():
    """A dataset with three planted heavy rows plus its ground truth."""
    return planted_heavy_hitters(
        n_rows=2000, n_columns=10, heavy_patterns=3, heavy_fraction=0.5, seed=5
    )


@pytest.fixture()
def example_query() -> ColumnQuery:
    """The running-example query {0, 3, 5} over d = 8."""
    return ColumnQuery.of([0, 3, 5], 8)


def exact_frequencies(dataset: Dataset, query: ColumnQuery) -> FrequencyVector:
    """Convenience wrapper used across tests."""
    return FrequencyVector.from_dataset(dataset, query)
