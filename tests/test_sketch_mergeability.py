"""Property tests for sketch mergeability.

For every mergeable sketch in :mod:`repro.sketches` these tests pin down the
contract the sharded engine relies on: merging summaries of two streams must
behave like summarising the concatenated stream — bit-for-bit for sketches
whose merge is lossless (linear sketches, hash-state unions), and within the
documented error guarantee for the counter-based summaries whose merge is
lossy (Misra-Gries, SpaceSaving).  Merging structurally incompatible
configurations must raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sketches.ams import AMSSketch
from repro.sketches.base import MergeableSketch
from repro.sketches.bjkst import BJKSTSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kmv import KMVSketch
from repro.sketches.linear_counting import LinearCounting
from repro.sketches.misra_gries import MisraGries
from repro.sketches.reservoir import (
    BernoulliSampler,
    ReservoirSampler,
    WithReplacementSampler,
)
from repro.sketches.space_saving import SpaceSaving
from repro.sketches.stable_lp import StableLpSketch

# Two overlapping multisets with skew, so merges see shared and disjoint items.
STREAM_ONE = [f"item-{i % 23}" for i in range(180)] + ["hot"] * 40
STREAM_TWO = [f"item-{i % 31}" for i in range(160)] + ["hot"] * 25
UNION = STREAM_ONE + STREAM_TWO
EXACT_COUNTS: dict[str, int] = {}
for _item in UNION:
    EXACT_COUNTS[_item] = EXACT_COUNTS.get(_item, 0) + 1


@dataclass(frozen=True)
class MergeCase:
    """One sketch family's merge contract."""

    name: str
    make: Callable[[], MergeableSketch]
    #: Lossless merge: merged state answers exactly like the union-fed sketch.
    exact: bool
    #: Factories whose products must refuse to merge with ``make()``'s.
    incompatible: tuple[Callable[[], MergeableSketch], ...] = field(default=())


CASES = [
    MergeCase(
        "kmv",
        lambda: KMVSketch(k=48, seed=1),
        exact=True,
        incompatible=(lambda: KMVSketch(k=24, seed=1), lambda: KMVSketch(k=48, seed=2)),
    ),
    MergeCase(
        "bjkst",
        lambda: BJKSTSketch(capacity=64, seed=1),
        exact=True,
        incompatible=(
            lambda: BJKSTSketch(capacity=32, seed=1),
            lambda: BJKSTSketch(capacity=64, seed=2),
        ),
    ),
    MergeCase(
        "hyperloglog",
        lambda: HyperLogLog(precision=10, seed=1),
        exact=True,
        incompatible=(
            lambda: HyperLogLog(precision=8, seed=1),
            lambda: HyperLogLog(precision=10, seed=2),
        ),
    ),
    MergeCase(
        "linear-counting",
        lambda: LinearCounting(bitmap_bits=2048, seed=1),
        exact=True,
        incompatible=(
            lambda: LinearCounting(bitmap_bits=1024, seed=1),
            lambda: LinearCounting(bitmap_bits=2048, seed=2),
        ),
    ),
    MergeCase(
        "count-min",
        lambda: CountMinSketch(width=128, depth=4, seed=1),
        exact=True,
        incompatible=(
            lambda: CountMinSketch(width=64, depth=4, seed=1),
            lambda: CountMinSketch(width=128, depth=4, seed=2),
        ),
    ),
    MergeCase(
        "count-sketch",
        lambda: CountSketch(width=128, depth=5, seed=1),
        exact=True,
        incompatible=(
            lambda: CountSketch(width=64, depth=5, seed=1),
            lambda: CountSketch(width=128, depth=3, seed=1),
        ),
    ),
    MergeCase(
        "ams",
        lambda: AMSSketch(width=32, depth=5, seed=1),
        exact=True,
        incompatible=(
            lambda: AMSSketch(width=16, depth=5, seed=1),
            lambda: AMSSketch(width=32, depth=5, seed=2),
        ),
    ),
    MergeCase(
        "stable-lp",
        lambda: StableLpSketch(p=1.5, width=24, depth=3, seed=1),
        exact=True,
        incompatible=(
            lambda: StableLpSketch(p=1.0, width=24, depth=3, seed=1),
            lambda: StableLpSketch(p=1.5, width=24, depth=3, seed=2),
        ),
    ),
    MergeCase(
        "misra-gries",
        lambda: MisraGries(k=16),
        exact=False,
        incompatible=(lambda: MisraGries(k=8),),
    ),
    MergeCase(
        "space-saving",
        lambda: SpaceSaving(k=16),
        exact=False,
        incompatible=(lambda: SpaceSaving(k=8),),
    ),
]


def _answers(sketch: MergeableSketch) -> list[float]:
    """The sketch's estimates, in a form comparable across instances."""
    if isinstance(sketch, (CountMinSketch, CountSketch, MisraGries, SpaceSaving)):
        return [float(sketch.estimate(item)) for item in sorted(EXACT_COUNTS)]
    return [float(sketch.estimate())]


@pytest.mark.parametrize("case", CASES, ids=[case.name for case in CASES])
def test_merge_matches_union_stream(case: MergeCase) -> None:
    first, second, union = case.make(), case.make(), case.make()
    first.update_many(STREAM_ONE)
    second.update_many(STREAM_TWO)
    union.update_many(UNION)

    first.merge(second)
    assert first.items_processed == union.items_processed == len(UNION)

    if case.exact:
        # Equal up to float summation order (counter merges add in a
        # different order than streaming the union).
        assert _answers(first) == pytest.approx(_answers(union), rel=1e-9, abs=1e-9)
    else:
        # Counter-based summaries: the merge is lossy but both the merged
        # and the union-fed summary must stay within the documented
        # per-item error bound relative to the exact counts.
        assert isinstance(first, (MisraGries, SpaceSaving))
        bound = first.error_bound()
        for item, exact_count in EXACT_COUNTS.items():
            assert abs(first.estimate(item) - exact_count) <= bound
            assert abs(union.estimate(item) - exact_count) <= bound


@pytest.mark.parametrize("case", CASES, ids=[case.name for case in CASES])
def test_merge_incompatible_configs_raise(case: MergeCase) -> None:
    for make_other in case.incompatible:
        sketch, other = case.make(), make_other()
        sketch.update_many(STREAM_ONE)
        other.update_many(STREAM_TWO)
        with pytest.raises(InvalidParameterError):
            sketch.merge(other)


@pytest.mark.parametrize("case", CASES, ids=[case.name for case in CASES])
def test_merge_rejects_foreign_sketch_type(case: MergeCase) -> None:
    sketch = case.make()
    foreign: MergeableSketch = (
        KMVSketch(k=8, seed=0) if not isinstance(sketch, KMVSketch) else MisraGries(k=8)
    )
    with pytest.raises(InvalidParameterError):
        sketch.merge(foreign)  # type: ignore[arg-type]


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(st.integers(min_value=0, max_value=40), max_size=120),
    split=st.integers(min_value=0, max_value=120),
)
def test_linear_sketch_merge_is_split_invariant(items: list[int], split: int) -> None:
    """Splitting a stream anywhere and merging gives the very same Count-Min."""
    split = min(split, len(items))
    left, right = CountMinSketch(width=32, depth=3, seed=9), CountMinSketch(
        width=32, depth=3, seed=9
    )
    whole = CountMinSketch(width=32, depth=3, seed=9)
    left.update_many(items[:split])
    right.update_many(items[split:])
    whole.update_many(items)
    left.merge(right)
    assert left.items_processed == whole.items_processed
    assert all(left.estimate(item) == whole.estimate(item) for item in set(items))


# -- sampler merges (the substrate of the uniform-sample estimator) -------------


def test_reservoir_merge_respects_capacity_and_membership() -> None:
    first = ReservoirSampler[int](capacity=32, seed=1)
    second = ReservoirSampler[int](capacity=32, seed=2)
    first.update_many(range(100))
    second.update_many(range(100, 250))
    first.merge(second)
    assert first.items_processed == 250
    merged = first.sample()
    assert len(merged) == 32
    assert set(merged) <= set(range(250))


def test_reservoir_merge_small_streams_concatenates() -> None:
    first = ReservoirSampler[int](capacity=32, seed=1)
    second = ReservoirSampler[int](capacity=32, seed=2)
    first.update_many(range(10))
    second.update_many(range(10, 15))
    first.merge(second)
    assert sorted(first.sample()) == list(range(15))


def test_reservoir_merge_is_statistically_uniform() -> None:
    """Inclusion frequency of each half of the union is near t/(n1+n2)."""
    hits = 0
    trials = 200
    for seed in range(trials):
        first = ReservoirSampler[int](capacity=10, seed=seed)
        second = ReservoirSampler[int](capacity=10, seed=1000 + seed)
        first.update_many(range(50))
        second.update_many(range(50, 100))
        first.merge(second)
        hits += sum(1 for item in first.sample() if item < 50)
    # E[hits per trial] = 5; allow a generous band around it.
    assert 4.0 < hits / trials < 6.0


def test_reservoir_merge_is_uniform_over_unequal_streams() -> None:
    """Per-element inclusion probability after merging unequal-length
    streams is ``t / (n1 + n2)``, element by element.

    This is the statistical guard on the merge implementation: the earlier
    weight-rescaling loop passed the aggregate 50/50 check above but gave
    elements of the *shorter* stream ~18% too much inclusion mass on a
    18/42 split.  The hypergeometric split must keep every element within
    binomial noise of the uniform rate, and the first-stream share within
    noise of ``n1 / (n1 + n2)``.
    """
    capacity, n_first, n_second = 6, 18, 42
    total = n_first + n_second
    trials = 3000
    inclusion = [0] * total
    from_first = 0
    for trial in range(trials):
        first = ReservoirSampler[int](capacity=capacity, seed=2 * trial + 1)
        second = ReservoirSampler[int](capacity=capacity, seed=2 * trial + 2)
        first.update_many(range(n_first))
        second.update_many(range(n_first, total))
        first.merge(second)
        sample = first.sample()
        assert len(sample) == capacity
        for item in sample:
            inclusion[item] += 1
            if item < n_first:
                from_first += 1
    expected = capacity / total
    # Per-element frequencies: each is Binomial(trials, p)/trials with
    # sigma ~ 0.0055 here; a 5-sigma band catches the old bias (which
    # pushed short-stream elements ~4 sigma high *systematically*) while
    # keeping the false-alarm rate over 60 elements negligible.
    sigma = (expected * (1 - expected) / trials) ** 0.5
    for element, count in enumerate(inclusion):
        frequency = count / trials
        assert abs(frequency - expected) < 5 * sigma, (
            f"element {element}: inclusion {frequency:.4f} vs expected "
            f"{expected:.4f} (tolerance {5 * sigma:.4f})"
        )
    # The first stream's share of the merged sample: E = n1/(n1+n2), and a
    # chi-square-style z-test on the aggregate count.
    share = from_first / (trials * capacity)
    share_sigma = (
        (n_first / total) * (n_second / total) / (trials * capacity)
    ) ** 0.5
    assert abs(share - n_first / total) < 5 * share_sigma, (
        f"stream-1 share {share:.4f} vs expected {n_first / total:.4f}"
    )


def test_with_replacement_merge_draw_distribution() -> None:
    first = WithReplacementSampler[int](draws=16, seed=3)
    second = WithReplacementSampler[int](draws=16, seed=4)
    first.update_many(range(30))
    second.update_many(range(30, 90))
    first.merge(second)
    assert first.items_processed == 90
    merged = first.sample()
    assert len(merged) == 16
    assert set(merged) <= set(range(90))


def test_with_replacement_merge_with_empty_side() -> None:
    first = WithReplacementSampler[int](draws=8, seed=3)
    second = WithReplacementSampler[int](draws=8, seed=4)
    second.update_many(range(20))
    first.merge(second)
    assert first.items_processed == 20
    assert len(first.sample()) == 8


def test_bernoulli_merge_concatenates_at_equal_rate() -> None:
    first = BernoulliSampler[int](rate=0.5, seed=1)
    second = BernoulliSampler[int](rate=0.5, seed=2)
    first.update_many(range(40))
    second.update_many(range(40, 80))
    kept = len(first.sample()) + len(second.sample())
    first.merge(second)
    assert len(first.sample()) == kept
    assert first.items_processed == 80


@pytest.mark.parametrize(
    "make_one, make_other",
    [
        (
            lambda: ReservoirSampler[int](capacity=8, seed=0),
            lambda: ReservoirSampler[int](capacity=4, seed=0),
        ),
        (
            lambda: WithReplacementSampler[int](draws=8, seed=0),
            lambda: WithReplacementSampler[int](draws=4, seed=0),
        ),
        (
            lambda: BernoulliSampler[int](rate=0.5, seed=0),
            lambda: BernoulliSampler[int](rate=0.25, seed=0),
        ),
        (
            lambda: ReservoirSampler[int](capacity=8, seed=0),
            lambda: WithReplacementSampler[int](draws=8, seed=0),
        ),
    ],
)
def test_sampler_merge_incompatibilities_raise(make_one, make_other) -> None:
    one, other = make_one(), make_other()
    one.update_many(range(10))
    other.update_many(range(10))
    with pytest.raises(InvalidParameterError):
        one.merge(other)
