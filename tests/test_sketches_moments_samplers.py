"""Tests for moment sketches (AMS, p-stable) and samplers (reservoir, Lp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError, InvalidParameterError
from repro.sketches.ams import AMSSketch
from repro.sketches.lp_sampler import LpSampler
from repro.sketches.reservoir import (
    BernoulliSampler,
    ReservoirSampler,
    WithReplacementSampler,
)
from repro.sketches.stable_lp import (
    StableLpSketch,
    median_of_absolute_stable,
    sample_p_stable,
)


def _skewed_counts(n_items: int = 40, seed: int = 0) -> dict[int, int]:
    rng = np.random.default_rng(seed)
    return {item: int(rng.integers(1, 50)) + (200 if item < 3 else 0) for item in range(n_items)}


def _replay(counts: dict[int, int], sketch) -> None:
    for item, count in counts.items():
        sketch.update(item, count)


class TestAMS:
    def test_f2_estimate_within_30_percent(self):
        counts = _skewed_counts(seed=1)
        true_f2 = sum(c * c for c in counts.values())
        sketch = AMSSketch(width=96, depth=5, seed=1)
        _replay(counts, sketch)
        assert abs(sketch.estimate() - true_f2) / true_f2 < 0.3

    def test_merge_is_additive(self):
        counts = _skewed_counts(seed=2)
        whole = AMSSketch(width=48, depth=3, seed=2)
        left = AMSSketch(width=48, depth=3, seed=2)
        right = AMSSketch(width=48, depth=3, seed=2)
        _replay(counts, whole)
        half = {item: count for item, count in counts.items() if item % 2 == 0}
        other = {item: count for item, count in counts.items() if item % 2 == 1}
        _replay(half, left)
        _replay(other, right)
        left.merge(right)
        assert left.estimate() == pytest.approx(whole.estimate(), rel=1e-9)

    def test_from_error_sizes(self):
        assert AMSSketch.from_error(0.05).width > AMSSketch.from_error(0.3).width

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            AMSSketch(width=0)
        with pytest.raises(InvalidParameterError):
            AMSSketch.from_error(epsilon=0.0)


class TestStableLp:
    def test_p_stable_sampler_shapes_and_special_cases(self):
        rng = np.random.default_rng(0)
        gaussian = sample_p_stable(2.0, rng, 5000)
        cauchy = sample_p_stable(1.0, rng, 5000)
        general = sample_p_stable(0.5, rng, 5000)
        assert gaussian.shape == cauchy.shape == general.shape == (5000,)
        # Gaussian branch has finite second moment near 2 (stability scaling).
        assert 1.0 < np.var(gaussian) < 3.0
        with pytest.raises(InvalidParameterError):
            sample_p_stable(2.5, rng, 10)

    def test_median_constant_for_cauchy_is_one(self):
        assert median_of_absolute_stable(1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_norm_estimate_accuracy(self, p):
        counts = {item: count for item, count in _skewed_counts(20, seed=3).items()}
        true_norm = sum(c**p for c in counts.values()) ** (1.0 / p)
        sketch = StableLpSketch(p=p, width=256, depth=3, seed=3)
        _replay(counts, sketch)
        assert abs(sketch.norm_estimate() - true_norm) / true_norm < 0.35

    def test_fp_estimate_is_norm_to_the_p(self):
        sketch = StableLpSketch(p=0.5, width=64, depth=1, seed=4)
        sketch.update("a", 4)
        assert sketch.estimate() == pytest.approx(sketch.norm_estimate() ** 0.5)

    def test_merge_requires_matching_p(self):
        with pytest.raises(InvalidParameterError):
            StableLpSketch(p=1.0, width=16, depth=1, seed=0).merge(
                StableLpSketch(p=2.0, width=16, depth=1, seed=0)
            )


class TestReservoirSamplers:
    def test_reservoir_holds_at_most_capacity(self):
        sampler = ReservoirSampler(capacity=50, seed=1)
        for value in range(1000):
            sampler.update(value)
        assert len(sampler) == 50
        assert sampler.items_processed == 1000
        assert set(sampler.sample()) <= set(range(1000))

    def test_reservoir_is_approximately_uniform(self):
        hits = 0
        trials = 300
        for seed in range(trials):
            sampler = ReservoirSampler(capacity=10, seed=seed)
            for value in range(100):
                sampler.update(value)
            hits += sum(1 for v in sampler.sample() if v < 10)
        # Each of the first 10 values is kept with probability 10/100.
        expected = trials * 10 * (10 / 100)
        assert abs(hits - expected) < 0.35 * expected

    def test_with_replacement_sampler_draw_count(self):
        sampler = WithReplacementSampler(draws=25, seed=2)
        for value in range(500):
            sampler.update(value)
        assert len(sampler.sample()) == 25

    def test_with_replacement_empty_stream(self):
        assert WithReplacementSampler(draws=5).sample() == []

    def test_bernoulli_sampler_rate(self):
        sampler = BernoulliSampler(rate=0.1, seed=3)
        for value in range(5000):
            sampler.update(value)
        assert 300 < len(sampler) < 700
        assert sampler.scale_factor() == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(capacity=0)
        with pytest.raises(InvalidParameterError):
            BernoulliSampler(rate=0.0)


class TestLpSampler:
    def test_sampling_from_empty_stream_fails(self):
        with pytest.raises(EstimationError):
            LpSampler(p=1.0).sample()

    def test_distribution_tracks_fp_weights(self):
        sampler = LpSampler(p=2.0, levels=8, level_capacity=64, seed=5)
        counts = {"heavy": 60, "medium": 20, "light": 4}
        for item, count in counts.items():
            sampler.update(item, count)
        empirical = sampler.empirical_distribution(draws=800)
        total = sum(c**2 for c in counts.values())
        assert empirical.get("heavy", 0) == pytest.approx(60**2 / total, abs=0.1)
        assert empirical.get("light", 0) < 0.05

    def test_sample_result_fields(self):
        sampler = LpSampler(p=1.0, seed=6)
        sampler.update("only", 3)
        result = sampler.sample()
        assert result.item == "only"
        assert result.probability == pytest.approx(1.0)
        assert result.frequency_estimate >= 3

    def test_size_grows_with_content(self):
        sampler = LpSampler(p=1.0, level_capacity=16, seed=7)
        empty_bits = sampler.size_in_bits()
        for value in range(200):
            sampler.update(value)
        assert sampler.size_in_bits() > empty_bits
