"""The experiment layer: spec validation, registry completeness, CLI, round trip."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import InvalidParameterError
from repro.experiments import (
    EngineConfig,
    EstimatorSpec,
    ExperimentSpec,
    ResultTable,
    RunParams,
    ScenarioOutput,
    all_scenarios,
    get_scenario,
    render_markdown,
    run_experiment,
    scenario_names,
    validate_result_payload,
)

# ---------------------------------------------------------------------------
# registry completeness
# ---------------------------------------------------------------------------


def test_registry_has_at_least_six_scenarios():
    assert len(scenario_names()) >= 6


def test_headline_scenarios_are_registered():
    names = scenario_names()
    assert "figure1" in names
    assert "table1" in names


def test_every_registered_spec_is_complete():
    for spec in all_scenarios():
        spec.validate()  # must not raise
        assert spec.title.strip()
        assert spec.paper_ref.strip()
        assert spec.description.strip()
        assert spec.metrics
        if spec.is_engine_scenario:
            assert spec.workload is not None
            assert spec.estimators


def test_unknown_scenario_lookup_raises():
    with pytest.raises(InvalidParameterError, match="unknown scenario"):
        get_scenario("no-such-scenario")


# ---------------------------------------------------------------------------
# spec and params validation
# ---------------------------------------------------------------------------


def _minimal_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="valid-name",
        title="A title",
        paper_ref="Theorem 0.0",
        description="A description.",
        metrics=("m",),
        run=lambda ctx: ScenarioOutput(metrics={"m": 1.0}),
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def test_spec_rejects_bad_names():
    for bad in ("Has Space", "CamelCase", "under_score", ""):
        with pytest.raises(InvalidParameterError, match="kebab"):
            _minimal_spec(name=bad).validate()


def test_spec_rejects_empty_metrics_and_duplicates():
    with pytest.raises(InvalidParameterError, match="at least one metric"):
        _minimal_spec(metrics=()).validate()
    with pytest.raises(InvalidParameterError, match="duplicate"):
        _minimal_spec(metrics=("m", "m")).validate()


def test_engine_spec_requires_workload_and_estimators():
    with pytest.raises(InvalidParameterError, match="workload"):
        _minimal_spec(engine=EngineConfig()).validate()


def test_engine_config_validation():
    with pytest.raises(InvalidParameterError):
        EngineConfig(n_shards=0).validate()
    with pytest.raises(InvalidParameterError):
        EngineConfig(policy="nope").validate()
    with pytest.raises(InvalidParameterError):
        EngineConfig(backend="nope").validate()


def test_engine_config_overrides():
    config = EngineConfig(n_shards=4, batch_size=2048)
    overridden = config.with_overrides(RunParams(n_shards=2, batch_size=0))
    assert overridden.n_shards == 2
    assert overridden.batch_size is None  # 0 forces the per-row path
    untouched = config.with_overrides(RunParams())
    assert untouched == config


def test_run_params_validation():
    with pytest.raises(InvalidParameterError):
        RunParams(seed=-1).validate()
    with pytest.raises(InvalidParameterError):
        RunParams(n_shards=0).validate()


def test_result_table_rejects_ragged_rows():
    with pytest.raises(InvalidParameterError, match="cells"):
        ResultTable(title="t", headers=("a", "b"), rows=((1,),)).validate()


def test_metric_drift_fails_loudly():
    spec = _minimal_spec(
        metrics=("declared",),
        run=lambda ctx: ScenarioOutput(metrics={"something_else": 1.0}),
    )
    with pytest.raises(InvalidParameterError, match="drifted"):
        run_experiment(spec)


# ---------------------------------------------------------------------------
# every scenario runs --quick and produces schema-valid JSON
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_quick_run_produces_schema_valid_payload(name):
    result = run_experiment(name, RunParams(seed=0, quick=True))
    payload = result.to_dict()
    assert validate_result_payload(payload) == []
    assert set(result.metrics) == set(get_scenario(name).metrics)
    # The payload survives a JSON round trip unchanged.
    assert validate_result_payload(json.loads(json.dumps(payload))) == []


def test_quick_and_full_share_metric_keys():
    spec = get_scenario("lb-f0")
    quick = run_experiment(spec, RunParams(quick=True))
    assert set(quick.metrics) == set(spec.metrics)


def test_metrics_are_deterministic_per_seed():
    first = run_experiment("table1", RunParams(seed=3, quick=True))
    second = run_experiment("table1", RunParams(seed=3, quick=True))
    assert first.metrics == second.metrics
    assert first.tables == second.tables


def test_figure1_matches_the_benchmark_reading():
    """The scenario records the same numbers the benchmark asserts."""
    result = run_experiment("figure1", RunParams(seed=0))
    assert 10 <= result.metrics["approximation_at_quarter_space"] < 100
    assert 100 <= result.metrics["approximation_at_eighth_space"] < 1000
    assert result.metrics["sketches_at_eighth_space"] == pytest.approx(4096, rel=0.25)


def test_throughput_sweep_honours_forced_per_row_path():
    """--batch-size 0 must drop the batched arm, not silently sweep 2048."""
    result = run_experiment(
        "ingest-throughput", RunParams(quick=True, batch_size=0)
    )
    assert result.engine is not None and result.engine.batch_size is None
    table = result.tables[0]
    batch_column = table.headers.index("batch size")
    assert all(row[batch_column] == "per-row" for row in table.rows)
    assert result.metrics["batch_speedup_single_shard"] == 1.0


def test_shard_override_reaches_the_engine():
    result = run_experiment(
        "usample-accuracy", RunParams(quick=True, n_shards=1, batch_size=0)
    )
    assert result.engine is not None
    assert result.engine.n_shards == 1
    assert result.engine.batch_size is None


def test_validate_result_payload_flags_problems():
    assert validate_result_payload([]) != []
    assert validate_result_payload({"schema": "wrong"}) != []
    good = run_experiment("figure1", RunParams(quick=True)).to_dict()
    broken = dict(good, metrics={})
    assert any("metrics" in problem for problem in validate_result_payload(broken))


# ---------------------------------------------------------------------------
# CLI: list / run / report and the run <-> report round trip
# ---------------------------------------------------------------------------


def test_cli_list_names_every_scenario(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_run_writes_json_and_markdown(tmp_path, capsys):
    assert cli_main(["run", "figure1", "--quick", "--out", str(tmp_path)]) == 0
    json_path = tmp_path / "figure1.json"
    md_path = tmp_path / "figure1.md"
    assert json_path.exists() and md_path.exists()
    payload = json.loads(json_path.read_text())
    assert validate_result_payload(payload) == []
    assert md_path.read_text() == render_markdown(payload)


def test_cli_run_and_report_agree(tmp_path, capsys):
    """The round trip: report regenerates byte-identical Markdown from JSON."""
    assert cli_main(["run", "table1", "--quick", "--out", str(tmp_path)]) == 0
    md_path = tmp_path / "table1.md"
    written_by_run = md_path.read_text()
    md_path.unlink()
    assert cli_main(["report", "--out", str(tmp_path)]) == 0
    assert md_path.read_text() == written_by_run
    assert (tmp_path / "REPORT.md").exists()
    assert "table1" in (tmp_path / "REPORT.md").read_text()


def test_cli_run_honours_seed_and_overrides(tmp_path, capsys):
    assert (
        cli_main(
            [
                "run",
                "usample-accuracy",
                "--quick",
                "--seed",
                "7",
                "--shards",
                "1",
                "--batch-size",
                "64",
                "--out",
                str(tmp_path),
            ]
        )
        == 0
    )
    payload = json.loads((tmp_path / "usample-accuracy.json").read_text())
    assert payload["params"]["seed"] == 7
    assert payload["engine"]["n_shards"] == 1
    assert payload["engine"]["batch_size"] == 64


def test_cli_rejects_unknown_scenario(capsys):
    assert cli_main(["run", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_report_on_empty_directory_fails(tmp_path, capsys):
    assert cli_main(["report", "--out", str(tmp_path / "empty")]) == 1
