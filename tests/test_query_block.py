"""Differential test harness for the vectorized query-path kernels.

Every batch query kernel added alongside ``estimate_block`` must answer
exactly what the scalar path answers (or be answer-equivalent with the
divergence documented in ``docs/architecture.md``, *Batch query kernels*).
This harness replays identical workloads through both paths on
``state_dict()``-identical summaries, across every point-query sketch
family, several seeds, and the adversarial batch shapes of the query tier:
empty batches, singletons, duplicate items inside one batch, and items the
summary never observed.  The same differential treatment covers the
estimator-level ``estimate_frequency_block`` paths and the
``QueryService.answer_block`` cache semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AlphaNetEstimator,
    ColumnQuery,
    Coordinator,
    Dataset,
    EstimationError,
    ExactBaseline,
    InvalidParameterError,
    QueryRequest,
    QueryService,
    RowStream,
    SketchPlan,
    UniformSampleEstimator,
)
from repro.core.estimator import ProjectedFrequencyEstimator, pattern_words
from repro.sketches import (
    AMSSketch,
    CountMinSketch,
    CountSketch,
    MisraGries,
    SpaceSaving,
)
from repro.sketches.base import PointQuerySketch, as_query_block

# ---------------------------------------------------------------------------
# shared workloads
# ---------------------------------------------------------------------------

WIDTH = 3  # symbols per item pattern
ALPHABET = 5  # observed symbols are drawn from [0, ALPHABET)


def _workload(seed: int, n_rows: int = 400) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, ALPHABET, size=(n_rows, WIDTH)).astype(np.int64)


def _query_batches(seed: int) -> dict[str, np.ndarray]:
    """Adversarial batch shapes: the names say what each one stresses."""
    rng = np.random.default_rng(seed + 1000)
    observed = _workload(seed)
    mixed = rng.integers(0, ALPHABET + 2, size=(64, WIDTH)).astype(np.int64)
    return {
        "empty": np.empty((0, WIDTH), dtype=np.int64),
        "singleton": observed[:1].copy(),
        "duplicates": np.repeat(observed[3:7], 4, axis=0),
        # Symbols >= ALPHABET never appear in the workload.
        "never_observed": np.full((8, WIDTH), ALPHABET + 3, dtype=np.int64),
        "mixed": mixed,
    }


POINT_FACTORIES = [
    pytest.param(lambda seed: CountMinSketch(width=29, depth=5, seed=seed), id="countmin"),
    pytest.param(lambda seed: CountMinSketch(width=17, depth=1, seed=seed), id="countmin-depth1"),
    pytest.param(lambda seed: CountSketch(width=31, depth=5, seed=seed), id="countsketch"),
    pytest.param(lambda seed: MisraGries(k=12), id="misra-gries"),
    pytest.param(lambda seed: SpaceSaving(k=12), id="space-saving"),
]

SEEDS = [0, 7, 1234]


def _built_pair(factory, seed):
    """Two ``state_dict()``-identical summaries over the same workload."""
    original = factory(seed)
    for row in _workload(seed).tolist():
        original.update(tuple(row))
    clone = factory(seed)
    clone.load_state_dict(original.state_dict())
    assert clone.state_dict().keys() == original.state_dict().keys()
    return original, clone


# ---------------------------------------------------------------------------
# sketch-level differential: estimate_block vs estimate
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("factory", POINT_FACTORIES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_name", ["empty", "singleton", "duplicates", "never_observed", "mixed"])
def test_estimate_block_matches_scalar(factory, seed, batch_name):
    """Block answers on a restored clone equal scalar answers, bit for bit."""
    scalar_sketch, block_sketch = _built_pair(factory, seed)
    batch = _query_batches(seed)[batch_name]
    items = [tuple(row) for row in batch.tolist()]
    expected = np.array(
        [scalar_sketch.estimate(item) for item in items], dtype=np.float64
    )
    answered = block_sketch.estimate_block(batch)
    assert answered.dtype == np.float64
    assert answered.shape == (len(items),)
    assert np.array_equal(answered, expected)


@pytest.mark.parametrize("factory", POINT_FACTORIES)
def test_estimate_block_accepts_tuple_sequences(factory):
    """Tuple-sequence input answers identically to the ndarray block."""
    sketch, _ = _built_pair(factory, seed=3)
    batch = _query_batches(3)["mixed"]
    items = [tuple(row) for row in batch.tolist()]
    assert np.array_equal(sketch.estimate_block(items), sketch.estimate_block(batch))


@pytest.mark.parametrize("factory", POINT_FACTORIES)
def test_estimate_block_on_empty_summary(factory):
    """A never-updated summary answers every batch entry like the scalar path."""
    sketch = factory(11)
    batch = _query_batches(11)["mixed"]
    expected = np.array(
        [sketch.estimate(tuple(row)) for row in batch.tolist()], dtype=np.float64
    )
    assert np.array_equal(sketch.estimate_block(batch), expected)
    assert sketch.estimate_block(np.empty((0, WIDTH), dtype=np.int64)).shape == (0,)
    assert sketch.estimate_block([]).shape == (0,)


def test_base_estimate_block_is_the_scalar_loop():
    """The PointQuerySketch fallback equals the documented per-item loop."""
    sketch, _ = _built_pair(lambda seed: CountMinSketch(width=29, depth=5, seed=seed), 5)
    batch = _query_batches(5)["mixed"]
    fallback = PointQuerySketch.estimate_block(sketch, batch)
    assert np.array_equal(fallback, sketch.estimate_block(batch))


def test_as_query_block_normalisation():
    """Block and tuple inputs resolve to the same keys; odd inputs fall back."""
    block = np.array([[1, 2], [3, 4]], dtype=np.int64)
    sequence, packed = as_query_block(block)
    assert sequence == [(1, 2), (3, 4)]
    assert np.array_equal(packed, block)
    sequence, packed = as_query_block([(1, 2), (3, 4)])
    assert sequence == [(1, 2), (3, 4)]
    assert np.array_equal(packed, block)
    # Ragged, non-tuple, and non-integer batches fall back to scalar keys.
    for odd in ([(1, 2), (3,)], ["ab", "cd"], [(1.5, 2.0)]):
        sequence, packed = as_query_block(odd)
        assert packed is None
        assert sequence == list(odd)
    sequence, packed = as_query_block([])
    assert sequence == [] and packed.shape == (0, 0)
    with pytest.raises(InvalidParameterError, match="estimate_block"):
        as_query_block(np.zeros((2, 2), dtype=np.float64))


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_estimate_block_fuzz(seed, data):
    """Random workloads and random batches: block == scalar on every family."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 4, size=(60, WIDTH)).astype(np.int64)
    m = data.draw(st.integers(min_value=0, max_value=24))
    batch = rng.integers(0, 6, size=(m, WIDTH)).astype(np.int64)
    for factory in (
        lambda s: CountMinSketch(width=13, depth=3, seed=s),
        lambda s: CountSketch(width=13, depth=3, seed=s),
        lambda s: MisraGries(k=6),
        lambda s: SpaceSaving(k=6),
    ):
        sketch = factory(seed % 97)
        sketch.update_block(rows)
        expected = np.array(
            [sketch.estimate(tuple(row)) for row in batch.tolist()],
            dtype=np.float64,
        )
        assert np.array_equal(sketch.estimate_block(batch), expected)


# ---------------------------------------------------------------------------
# AMS point queries: estimate_block vs estimate_point
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_name", ["empty", "singleton", "duplicates", "never_observed", "mixed"])
def test_ams_estimate_block_matches_estimate_point(seed, batch_name):
    scalar_sketch = AMSSketch(width=16, depth=5, seed=seed)
    for row in _workload(seed, n_rows=200).tolist():
        scalar_sketch.update(tuple(row))
    block_sketch = AMSSketch(width=16, depth=5, seed=seed)
    block_sketch.load_state_dict(scalar_sketch.state_dict())
    batch = _query_batches(seed)[batch_name]
    expected = np.array(
        [scalar_sketch.estimate_point(tuple(row)) for row in batch.tolist()],
        dtype=np.float64,
    )
    assert np.array_equal(block_sketch.estimate_block(batch), expected)


def test_ams_estimate_point_is_unbiased_on_simple_stream():
    """Sanity anchor: the point estimate tracks a planted heavy item."""
    sketch = AMSSketch(width=64, depth=7, seed=1)
    for _ in range(300):
        sketch.update((1, 1, 1))
    for noise in range(40):
        sketch.update((0, noise % 3, 2))
    estimate = sketch.estimate_point((1, 1, 1))
    assert 150 <= estimate <= 450


# ---------------------------------------------------------------------------
# heavy_hitters: whole-table candidate filter vs per-candidate loop
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(lambda seed: CountMinSketch(width=29, depth=5, seed=seed), id="countmin"),
        pytest.param(lambda seed: CountSketch(width=31, depth=5, seed=seed), id="countsketch"),
    ],
)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("threshold", [0.0, 5.0, 25.0, 1e9])
def test_heavy_hitters_filter_matches_scalar_loop(factory, seed, threshold):
    """The vectorized candidate filter reports the scalar loop's dict exactly
    — same keys, same estimates, same candidate order."""
    scalar_sketch, block_sketch = _built_pair(factory, seed)
    candidates = _query_batches(seed)["mixed"]
    candidate_tuples = [tuple(row) for row in candidates.tolist()]
    expected = PointQuerySketch.heavy_hitters(
        scalar_sketch, candidate_tuples, threshold
    )
    answered = block_sketch.heavy_hitters(candidates, threshold)
    assert answered == expected
    assert list(answered) == list(expected)


def test_heavy_hitters_falls_back_for_unpackable_candidates():
    sketch, _ = _built_pair(lambda seed: CountMinSketch(width=29, depth=5, seed=seed), 2)
    candidates = ["alpha", "beta"]
    for candidate in candidates:
        sketch.update(candidate)
    report = sketch.heavy_hitters(candidates, 1.0)
    assert report == PointQuerySketch.heavy_hitters(sketch, candidates, 1.0)


# ---------------------------------------------------------------------------
# estimator-level: estimate_frequency_block vs estimate_frequency
# ---------------------------------------------------------------------------

EST_D = 6
EST_ROWS = Dataset.random(n_rows=500, n_columns=EST_D, seed=21).to_array()
EST_QUERY = ColumnQuery.of([0, 2, 5], EST_D)


def _estimators():
    alpha = AlphaNetEstimator(
        EST_D, alpha=0.3, plan=SketchPlan.default_point(seed=5)
    ).observe(EST_ROWS)
    usample = UniformSampleEstimator(EST_D, sample_size=128, seed=13).observe(EST_ROWS)
    exact = ExactBaseline(EST_D).observe(EST_ROWS)
    return [
        pytest.param(alpha, id="alpha-net"),
        pytest.param(usample, id="uniform-sample"),
        pytest.param(exact, id="exact"),
    ]


PATTERNS = [(0, 1, 0), (1, 1, 1), (0, 0, 0), (0, 1, 0), (1, 0, 1), (2, 2, 2)]


@pytest.mark.parametrize("estimator", _estimators())
def test_estimate_frequency_block_matches_scalar(estimator):
    expected = np.array(
        [estimator.estimate_frequency(EST_QUERY, p) for p in PATTERNS],
        dtype=np.float64,
    )
    block = estimator.estimate_frequency_block(EST_QUERY, PATTERNS)
    assert np.array_equal(block, expected)
    as_array = estimator.estimate_frequency_block(
        EST_QUERY, np.array(PATTERNS, dtype=np.int64)
    )
    assert np.array_equal(as_array, expected)
    assert estimator.estimate_frequency_block(EST_QUERY, []).shape == (0,)


@pytest.mark.parametrize("estimator", _estimators())
def test_estimate_frequency_block_rejects_bad_patterns(estimator):
    # The block path mirrors each scalar path's treatment of a wrong-length
    # pattern: α-net and uniform-sample raise; the exact baseline answers
    # the (necessarily absent) key with 0.0.
    if isinstance(estimator, ExactBaseline):
        assert estimator.estimate_frequency(EST_QUERY, (0, 1)) == 0.0
        assert np.array_equal(
            estimator.estimate_frequency_block(EST_QUERY, [(0, 1)]),
            np.zeros(1),
        )
    else:
        with pytest.raises(EstimationError, match="does not match query size"):
            estimator.estimate_frequency_block(EST_QUERY, [(0, 1)])
    with pytest.raises(EstimationError, match="2-D"):
        estimator.estimate_frequency_block(
            EST_QUERY, np.zeros((2, 2, 2), dtype=np.int64)
        )


def test_base_estimate_frequency_block_is_the_scalar_loop():
    exact = ExactBaseline(EST_D).observe(EST_ROWS)
    fallback = ProjectedFrequencyEstimator.estimate_frequency_block(
        exact, EST_QUERY, PATTERNS
    )
    assert np.array_equal(fallback, exact.estimate_frequency_block(EST_QUERY, PATTERNS))


def test_pattern_words_normalisation():
    assert pattern_words([(0, 1), (1, 0)]) == [(0, 1), (1, 0)]
    assert pattern_words(np.array([[0, 1], [1, 0]], dtype=np.int64)) == [
        (0, 1),
        (1, 0),
    ]
    with pytest.raises(EstimationError, match="2-D"):
        pattern_words(np.zeros(3, dtype=np.int64))


def test_uniform_sample_block_raises_like_scalar_when_empty():
    estimator = UniformSampleEstimator(EST_D, sample_size=16, seed=1)
    with pytest.raises(EstimationError, match="no rows observed"):
        estimator.estimate_frequency_block(EST_QUERY, PATTERNS)
    # ...but an empty batch never touches the sampler, as the scalar loop
    # over zero patterns never would.
    assert estimator.estimate_frequency_block(EST_QUERY, []).shape == (0,)


# ---------------------------------------------------------------------------
# QueryService.answer_block: answers, cache interaction, invalidation
# ---------------------------------------------------------------------------

SVC_D = 6
SVC_DATA = Dataset.random(n_rows=600, n_columns=SVC_D, seed=31)
SVC_QUERY = ColumnQuery.of([0, 2, 4], SVC_D)
SVC_QUERY_B = ColumnQuery.of([1, 3], SVC_D)


def _service(cache_size: int = 64):
    engine = Coordinator(
        lambda: ExactBaseline(n_columns=SVC_D), n_shards=2, backend="serial"
    )
    engine.ingest(RowStream(SVC_DATA))
    return engine, engine.query_service(cache_size=cache_size)


def _requests() -> list[QueryRequest]:
    return [
        QueryRequest.frequency(SVC_QUERY, (0, 1, 0)),
        QueryRequest.frequency(SVC_QUERY, (1, 1, 1)),
        QueryRequest.frequency(SVC_QUERY_B, (0, 0)),
        QueryRequest.fp(SVC_QUERY, 0),
        QueryRequest.heavy_hitters(SVC_QUERY, 0.05),
        QueryRequest.frequency(SVC_QUERY, (0, 1, 0)),  # in-batch duplicate
    ]


def _scalar_replay(service: QueryService, requests) -> list:
    answers = []
    for request in requests:
        if request.kind == "fp":
            answers.append(service.estimate_fp(request.query, request.p))
        elif request.kind == "frequency":
            answers.append(
                service.estimate_frequency(request.query, request.pattern)
            )
        else:
            answers.append(
                service.heavy_hitters(request.query, request.phi, request.p)
            )
    return answers


def test_answer_block_matches_scalar_answers():
    _, batch_service = _service()
    _, scalar_service = _service()
    requests = _requests()
    assert batch_service.answer_block(requests) == _scalar_replay(
        scalar_service, requests
    )


def test_answer_block_counts_hits_and_misses_like_scalar_replay():
    _, service = _service()
    requests = _requests()
    service.answer_block(requests)
    first = service.cache_info()
    # 5 unique keys miss; the in-batch duplicate hits, as a scalar replay
    # (which caches the first occurrence) would have hit.
    assert first.misses == 5 and first.hits == 1
    # A scalar replay of the same batch is now all cache hits.
    _scalar_replay(service, requests)
    second = service.cache_info()
    assert second.misses == 5 and second.hits == 1 + len(requests)


def test_scalar_calls_prefill_the_batch_path():
    _, service = _service()
    requests = _requests()
    _scalar_replay(service, requests)
    before = service.cache_info()
    answers = service.answer_block(requests)
    after = service.cache_info()
    assert after.misses == before.misses  # nothing recomputed
    assert after.hits == before.hits + len(requests)
    assert answers == _scalar_replay(service, requests)


def test_answer_block_heavy_hitter_results_are_copies():
    _, service = _service()
    request = QueryRequest.heavy_hitters(SVC_QUERY, 0.05)
    first, second = (
        service.answer_block([request])[0],
        service.answer_block([request])[0],
    )
    assert first == second
    first.clear()
    assert service.answer_block([request])[0] == second


def test_answer_block_ingest_invalidates_cache():
    """Version-pinning regression: a post-batch ingest drops every cached
    answer, and the next batch recomputes against the grown summary."""
    rows = SVC_DATA.to_array()
    engine = Coordinator(
        lambda: ExactBaseline(n_columns=SVC_D), n_shards=2, backend="serial"
    )
    engine.ingest(RowStream.from_rows(rows[:300].tolist(), SVC_D))
    service = engine.query_service(cache_size=64)
    request = QueryRequest.fp(SVC_QUERY, 1)
    stale = service.answer_block([request])[0]
    assert stale == 300.0
    engine.ingest(RowStream.from_rows(rows[300:].tolist(), SVC_D))
    fresh = service.answer_block([request])[0]
    assert fresh == 600.0
    info = service.cache_info()
    assert info.invalidations == 1
    assert info.misses == 2 and info.hits == 0


def test_answer_block_with_caching_disabled():
    """cache_size=0: every entry computes independently, like scalar calls."""
    _, service = _service(cache_size=0)
    requests = _requests()
    answers = service.answer_block(requests)
    info = service.cache_info()
    assert info.misses == len(requests) and info.hits == 0
    assert answers[0] == answers[5]  # duplicate entries still get answers
    _, scalar_service = _service(cache_size=0)
    assert answers == _scalar_replay(scalar_service, requests)


def test_answer_block_validates_upfront():
    _, service = _service()
    with pytest.raises(InvalidParameterError, match="unknown query kind"):
        service.answer_block([QueryRequest(kind="nope", query=SVC_QUERY)])
    with pytest.raises(InvalidParameterError, match="must set p"):
        service.answer_block([QueryRequest(kind="fp", query=SVC_QUERY)])
    with pytest.raises(InvalidParameterError, match="must set a pattern"):
        service.answer_block([QueryRequest(kind="frequency", query=SVC_QUERY)])
    with pytest.raises(InvalidParameterError, match="must set phi"):
        service.answer_block([QueryRequest(kind="heavy_hitters", query=SVC_QUERY)])
    # A bad entry anywhere in the batch fails before any compute runs.
    info = service.cache_info()
    assert info.misses == 0 and info.hits == 0


def test_answer_block_empty_batch():
    _, service = _service()
    assert service.answer_block([]) == []
    info = service.cache_info()
    assert info.misses == 0 and info.hits == 0


def test_answer_block_latency_recorders_cover_each_kind():
    _, service = _service()
    service.answer_block(_requests())
    stats = service.stats()
    for kind in ("frequency", "fp", "heavy_hitters"):
        assert stats[kind].count >= 1
