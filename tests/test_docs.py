"""The docs gate, run as part of the suite: links resolve, symbols documented."""

from __future__ import annotations

import doctest
import importlib
import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Modules whose docstring examples must stay executable.
DOCTEST_MODULES = (
    "repro.engine.coordinator",
    "repro.engine.partition",
    "repro.engine.service",
    "repro.engine.shard",
    "repro.engine.stats",
    "repro.experiments",
    "repro.experiments.registry",
    "repro.experiments.report",
    "repro.experiments.runner",
    "repro.experiments.specs",
    "repro.telemetry",
    "repro.telemetry.export",
    "repro.telemetry.registry",
    "repro.telemetry.trace",
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_markdown_links_resolve():
    assert check_docs.check_markdown_links() == []


def test_public_engine_and_experiments_symbols_have_docstrings():
    assert check_docs.check_docstrings() == []


def test_docs_tree_exists():
    for name in ("architecture.md", "experiments.md", "api.md", "observability.md"):
        assert (REPO_ROOT / "docs" / name).exists()


def test_link_checker_catches_broken_links(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("see [missing](docs/missing.md)\n")
    problems = check_docs.check_markdown_links(tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_docstring_examples_execute(module_name):
    """The engine/experiments docstring examples actually run (not just exist)."""
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its docstring examples"
    assert result.failed == 0


def test_docstring_checker_catches_undocumented_symbols(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text('"""Module docstring."""\n\ndef public():\n    pass\n')
    problems = check_docs._missing_docstrings_in_file(bad, tmp_path)
    assert len(problems) == 1
    assert "public" in problems[0]
