"""Tests for the Index game harness and the Theorem 4.1 / Corollary 4.x instances."""

from __future__ import annotations

import pytest

from repro.core.frequency import FrequencyVector
from repro.errors import InvalidParameterError, ProtocolError
from repro.lowerbounds.f0_instance import (
    F0InstanceParameters,
    build_f0_instance,
)
from repro.lowerbounds.index_problem import (
    IndexGame,
    IndexInstance,
    index_lower_bound_bits,
)
from repro.coding.binary_codes import ConstantWeightCode


class TestIndexInstance:
    def test_random_instance_respects_forced_membership(self):
        code = ConstantWeightCode.full(d=6, k=2)
        member = IndexInstance.random(code.words, force_membership=True, seed=1)
        non_member = IndexInstance.random(code.words, force_membership=False, seed=1)
        assert member.answer is True
        assert non_member.answer is False

    def test_alice_bits_match_subset(self):
        code = ConstantWeightCode.full(d=5, k=2)
        instance = IndexInstance.random(code.words, seed=2)
        bits = instance.alice_bits()
        assert len(bits) == instance.universe_size
        for index, word in enumerate(instance.codewords):
            assert bits[index] == (1 if word in instance.alice_subset else 0)

    def test_bob_index_consistency(self):
        code = ConstantWeightCode.full(d=5, k=2)
        instance = IndexInstance.random(code.words, seed=3)
        assert instance.codewords[instance.bob_index] == instance.bob_word

    def test_invalid_construction_rejected(self):
        code = ConstantWeightCode.full(d=4, k=2)
        with pytest.raises(InvalidParameterError):
            IndexInstance(
                codewords=code.words,
                alice_subset=frozenset({(1, 1, 1, 1)}),
                bob_word=code.words[0],
            )

    def test_lower_bound_bits_scale_linearly(self):
        assert index_lower_bound_bits(2000) == pytest.approx(
            2 * index_lower_bound_bits(1000)
        )
        with pytest.raises(InvalidParameterError):
            index_lower_bound_bits(100, success_probability=0.4)


class TestIndexGame:
    def test_exact_f0_protocol_always_succeeds(self):
        # Bob uses an exact F0 computation as the "algorithm": the reduction
        # must then decode the membership bit perfectly.
        def encode(instance):
            built = build_f0_instance(
                d=8, k=2, alphabet_size=4, membership=instance.answer, seed=0
            )
            encode.current = built  # stash for the decide step
            return list(built.dataset.iter_rows())

        def summarise(rows):
            return rows, 64 * len(rows)

        def decide(summary, instance):
            built = encode.current
            exact = built.exact_f0()
            return float(exact), built.decide_from_estimate(exact)

        game = IndexGame(encode=encode, summarise=summarise, decide=decide)
        code = ConstantWeightCode.full(d=8, k=2)
        for seed in range(4):
            game.play(IndexInstance.random(code.words, seed=seed))
        assert game.success_rate() == 1.0
        assert game.mean_message_bits() > 0

    def test_empty_outcomes_raise(self):
        game = IndexGame(
            encode=lambda instance: [(0,)],
            summarise=lambda rows: (rows, 1),
            decide=lambda summary, instance: (0.0, True),
        )
        with pytest.raises(ProtocolError):
            game.success_rate()

    def test_empty_encoding_rejected(self):
        game = IndexGame(
            encode=lambda instance: [],
            summarise=lambda rows: (rows, 1),
            decide=lambda summary, instance: (0.0, True),
        )
        code = ConstantWeightCode.full(d=4, k=2)
        with pytest.raises(ProtocolError):
            game.play(IndexInstance.random(code.words, seed=0))


class TestF0InstanceParameters:
    def test_approximation_factor_is_q_over_k(self):
        params = F0InstanceParameters(d=10, k=3, alphabet_size=6)
        assert params.approximation_factor == pytest.approx(2.0)

    def test_separation_bounds(self):
        params = F0InstanceParameters(d=10, k=3, alphabet_size=6)
        assert params.patterns_if_member == 6**3
        assert params.patterns_if_not_member == 3 * 6**2
        assert params.patterns_if_member / params.patterns_if_not_member == (
            pytest.approx(params.approximation_factor)
        )

    def test_code_size_bound(self):
        params = F0InstanceParameters(d=12, k=3, alphabet_size=4)
        assert params.code_size >= params.code_size_lower_bound

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            F0InstanceParameters(d=10, k=6, alphabet_size=8)  # k > d/2
        with pytest.raises(InvalidParameterError):
            F0InstanceParameters(d=10, k=3, alphabet_size=3)  # Q <= k


class TestF0HardInstance:
    @pytest.mark.parametrize("membership", [True, False])
    def test_separation_holds_for_both_branches(self, membership):
        instance = build_f0_instance(
            d=10, k=3, alphabet_size=5, membership=membership, code_size=40, seed=1
        )
        assert instance.answer is membership
        assert instance.separation_holds()

    def test_exact_count_decides_membership(self):
        for seed in range(3):
            for membership in (True, False):
                instance = build_f0_instance(
                    d=10,
                    k=3,
                    alphabet_size=5,
                    membership=membership,
                    code_size=40,
                    seed=seed,
                )
                decided = instance.decide_from_estimate(instance.exact_f0())
                assert decided is membership

    def test_query_is_the_support_of_bobs_word(self):
        instance = build_f0_instance(
            d=10, k=3, alphabet_size=4, membership=True, code_size=30, seed=2
        )
        assert len(instance.query) == 3
        bob = instance.index_instance.bob_word
        assert set(instance.query.columns) == {
            index for index, symbol in enumerate(bob) if symbol
        }

    def test_instance_rows_are_child_words_of_alices_set(self):
        instance = build_f0_instance(
            d=8, k=2, alphabet_size=4, membership=True, code_size=20, seed=3
        )
        supports = [
            frozenset(i for i, s in enumerate(word) if s)
            for word in instance.index_instance.alice_subset
        ]
        for row in instance.dataset.iter_rows():
            row_support = frozenset(i for i, s in enumerate(row) if s)
            assert any(row_support <= parent for parent in supports)

    def test_corollary_4_4_alphabet_reduction_preserves_f0(self):
        instance = build_f0_instance(
            d=8, k=2, alphabet_size=5, membership=True, code_size=20, seed=4
        )
        reduced = instance.reduce_alphabet(target_alphabet=2)
        assert reduced.dataset.alphabet_size == 2
        assert reduced.dataset.n_columns == 8 * 3  # ceil(log2 5) = 3
        original_f0 = instance.exact_f0()
        reduced_f0 = FrequencyVector.from_dataset(
            reduced.dataset, reduced.query
        ).distinct_patterns()
        assert reduced_f0 == original_f0

    def test_gap_grows_with_alphabet(self):
        small = F0InstanceParameters(d=10, k=3, alphabet_size=4)
        large = F0InstanceParameters(d=10, k=3, alphabet_size=16)
        assert large.approximation_factor > small.approximation_factor

    def test_invalid_code_size(self):
        with pytest.raises(InvalidParameterError):
            build_f0_instance(
                d=10, k=3, alphabet_size=5, membership=True, code_size=1
            )
