"""Tests for the repro.lint static-analysis subsystem.

Covers the golden fixtures (each known-bad snippet triggers exactly its
rule), the self-clean guarantee on ``src/repro``, ``# repro: noqa``
suppressions, baseline round trips, the JSON report schema, the CLI
exit-code contract (0 clean / 1 findings / 2 usage), and the seeded
regressions the CI lint job must catch (a sketch losing ``update_block``,
a metric renamed away from the catalogue).
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.lint as lint
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "lint"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))


# ---------------------------------------------------------------------------
# golden fixtures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda path: path.stem)
def test_golden_fixture_triggers_exactly_its_rule(fixture):
    """Every known-bad snippet fires its intended rule and nothing else."""
    expected = fixture.stem.split("_", 1)[0].upper()
    report = lint.run_lint([str(fixture)], root=REPO_ROOT)
    fired = {finding.rule for finding in report.findings}
    assert fired == {expected}, (
        f"{fixture.name}: fired {sorted(fired)}, expected exactly {expected}"
    )
    assert report.files_checked == 1
    assert all(finding.severity in lint.SEVERITIES for finding in report.findings)


def test_fixture_coverage_spans_all_four_families():
    """The fixture set exercises every core rule family plus LINT001."""
    prefixes = {path.stem.split("_", 1)[0].upper()[:3] for path in FIXTURES}
    assert {"DET", "KER", "PRO", "TEL", "LIN"} <= prefixes


# ---------------------------------------------------------------------------
# self-clean + catalogue sanity
# ---------------------------------------------------------------------------


def test_src_repro_is_lint_clean():
    """The shipped tree has no active findings (suppressions are justified)."""
    report = lint.run_lint(["src/repro"], root=REPO_ROOT)
    assert report.files_checked > 50
    assert report.findings == [], "\n".join(
        str(finding) for finding in report.findings
    )
    # The deliberate suppressions (order-dependent sketches, exact float
    # parameter dispatch) are present, not silently dropped.
    suppressed_rules = {finding.rule for finding in report.suppressed}
    assert "PRO004" in suppressed_rules
    assert "KER002" in suppressed_rules


def test_observability_catalogue_parses():
    """The metric/span catalogue the TEL rules diff against is non-trivial."""
    from repro.lint.context import ProjectContext

    project = ProjectContext(REPO_ROOT)
    assert "repro_ingest_rows_total" in project.metric_catalogue
    assert project.metric_catalogue["repro_ingest_rows_total"] == {
        "backend",
        "policy",
    }
    assert project.metric_catalogue["repro_merge_total"] == frozenset()
    assert "coordinator.ingest" in project.span_catalogue
    assert "service.query" in project.span_catalogue


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def _lint_source(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint.run_lint([str(path)], root=tmp_path)


def test_noqa_with_rule_id_suppresses(tmp_path):
    report = _lint_source(
        tmp_path,
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng()  # repro: noqa[DET001]\n",
    )
    assert report.findings == []
    assert [finding.rule for finding in report.suppressed] == ["DET001"]


def test_bare_noqa_suppresses_every_rule_on_the_line(tmp_path):
    report = _lint_source(
        tmp_path,
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng()  # repro: noqa\n",
    )
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_noqa_for_a_different_rule_does_not_suppress(tmp_path):
    report = _lint_source(
        tmp_path,
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng()  # repro: noqa[KER001]\n",
    )
    assert [finding.rule for finding in report.findings] == ["DET001"]
    assert report.suppressed == []


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------

_BAD_SOURCE = (
    "import numpy as np\n"
    "def make():\n"
    "    return np.random.default_rng()\n"
)


def test_baseline_round_trip(tmp_path):
    """Findings written to a baseline are reported as baselined, exit 0."""
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    first = lint.run_lint([str(sample)], root=tmp_path)
    assert len(first.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(first.findings, baseline_path)
    payload = json.loads(baseline_path.read_text())
    assert payload["schema"] == lint.LINT_BASELINE_SCHEMA

    second = lint.run_lint(
        [str(sample)], root=tmp_path, baseline_path=baseline_path
    )
    assert second.findings == []
    assert len(second.baselined) == 1
    assert lint.exit_code(second) == 0


def test_baseline_does_not_mask_new_findings(tmp_path):
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(
        lint.run_lint([str(sample)], root=tmp_path).findings, baseline_path
    )
    # A second, different violation appears: the baseline keeps covering
    # the old one but the new one stays active.
    sample.write_text(_BAD_SOURCE + "def seed():\n    np.random.seed(3)\n")
    report = lint.run_lint(
        [str(sample)], root=tmp_path, baseline_path=baseline_path
    )
    assert [finding.rule for finding in report.findings] == ["DET002"]
    assert [finding.rule for finding in report.baselined] == ["DET001"]
    assert lint.exit_code(report) == 1


def test_baseline_counts_duplicate_fingerprints(tmp_path):
    """Two identical findings need a count of two in the baseline."""
    doubled = (
        "import numpy as np\n"
        "def a():\n"
        "    return np.random.default_rng()\n"
        "def b():\n"
        "    return np.random.default_rng()\n"
    )
    sample = tmp_path / "sample.py"
    sample.write_text(doubled)
    first = lint.run_lint([str(sample)], root=tmp_path)
    assert len(first.findings) == 2
    fingerprints = {finding.fingerprint for finding in first.findings}
    assert len(fingerprints) == 1  # same rule, path and message

    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(first.findings[:1], baseline_path)  # count = 1
    report = lint.run_lint(
        [str(sample)], root=tmp_path, baseline_path=baseline_path
    )
    assert len(report.baselined) == 1
    assert len(report.findings) == 1  # the second occurrence stays active


def test_malformed_baseline_is_a_usage_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"schema": "something-else"}')
    with pytest.raises(lint.LintUsageError):
        lint.load_baseline(bad)
    with pytest.raises(lint.LintUsageError):
        lint.load_baseline(tmp_path / "missing.json")


# ---------------------------------------------------------------------------
# report formats + engine API
# ---------------------------------------------------------------------------


def test_json_report_schema(tmp_path):
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    report = lint.run_lint([str(sample)], root=tmp_path)
    payload = json.loads(lint.render_findings(report, "json"))
    assert payload["schema"] == lint.LINT_REPORT_SCHEMA
    assert payload["files_checked"] == 1
    assert payload["summary"] == {"DET001": 1}
    (entry,) = payload["findings"]
    assert entry["rule"] == "DET001"
    assert entry["path"] == "sample.py"
    assert entry["line"] == 3
    restored = lint.Finding.from_dict(entry)
    assert restored == report.findings[0]


def test_pretty_rendering_mentions_counts(tmp_path):
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    report = lint.run_lint([str(sample)], root=tmp_path)
    text = lint.render_findings(report, "pretty")
    assert "sample.py:3" in text
    assert "DET001" in text
    assert "1 finding(s) in 1 file" in text


def test_unknown_select_is_a_usage_error(tmp_path):
    sample = tmp_path / "clean.py"
    sample.write_text("X = 1\n")
    with pytest.raises(lint.LintUsageError):
        lint.run_lint([str(sample)], root=tmp_path, select=["NOPE999"])


def test_select_restricts_rules(tmp_path):
    source = (
        "import numpy as np\n"
        "def make():\n"
        "    np.random.seed(3)\n"
        "    return np.random.default_rng()\n"
    )
    sample = tmp_path / "sample.py"
    sample.write_text(source)
    report = lint.run_lint([str(sample)], root=tmp_path, select=["DET002"])
    assert [finding.rule for finding in report.findings] == ["DET002"]


def test_missing_path_is_a_usage_error(tmp_path):
    with pytest.raises(lint.LintUsageError):
        lint.run_lint([str(tmp_path / "no-such-dir")], root=tmp_path)


def test_changed_only_without_git_lints_everything(tmp_path):
    """Outside a git work tree --changed-only degrades to a full lint."""
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    report = lint.run_lint([str(sample)], root=tmp_path, changed_only=True)
    assert [finding.rule for finding in report.findings] == ["DET001"]


def test_rule_registry_contract():
    """Every rule has a summary, rationale and valid severity; ids sort."""
    rules = lint.all_rules()
    assert len(rules) >= 20
    for rule in rules:
        assert rule.summary and rule.rationale
        assert rule.severity in lint.SEVERITIES
        assert rule.rule_id in rule.explain()
    assert lint.rule_ids() == sorted(lint.rule_ids())
    assert lint.get_rule("DET001").rule_id == "DET001"
    with pytest.raises(KeyError):
        lint.get_rule("NOPE999")


# ---------------------------------------------------------------------------
# CLI exit-code contract
# ---------------------------------------------------------------------------


def _run_cli(args, monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = cli_main(["lint", *args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_clean_tree_exits_zero(monkeypatch, capsys):
    code, out, _ = _run_cli(["src/repro"], monkeypatch, capsys)
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_findings_exit_one(monkeypatch, capsys):
    fixture = FIXTURE_DIR / "det001_unseeded_rng.py"
    code, out, _ = _run_cli([str(fixture)], monkeypatch, capsys)
    assert code == 1
    assert "DET001" in out


def test_cli_json_format(monkeypatch, capsys):
    fixture = FIXTURE_DIR / "det001_unseeded_rng.py"
    code, out, _ = _run_cli(
        [str(fixture), "--format", "json"], monkeypatch, capsys
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["schema"] == lint.LINT_REPORT_SCHEMA
    assert payload["summary"] == {"DET001": 1}


def test_cli_list_rules(monkeypatch, capsys):
    code, out, _ = _run_cli(["--list-rules"], monkeypatch, capsys)
    assert code == 0
    for rule_id in ("DET001", "KER001", "PRO001", "TEL001"):
        assert rule_id in out


def test_cli_explain(monkeypatch, capsys):
    code, out, _ = _run_cli(["--explain", "PRO004"], monkeypatch, capsys)
    assert code == 0
    assert "PRO004" in out
    assert "noqa[PRO004]" in out


def test_cli_explain_unknown_rule_exits_two(monkeypatch, capsys):
    code, _, err = _run_cli(["--explain", "NOPE999"], monkeypatch, capsys)
    assert code == 2
    assert "unknown rule" in err


def test_cli_unknown_path_exits_two(monkeypatch, capsys):
    code, _, err = _run_cli(["no/such/path"], monkeypatch, capsys)
    assert code == 2
    assert "no such file" in err


def test_cli_unknown_select_exits_two(monkeypatch, capsys):
    code, _, err = _run_cli(
        ["src/repro", "--select", "NOPE999"], monkeypatch, capsys
    )
    assert code == 2
    assert "unknown rule" in err


def test_cli_write_baseline_round_trip(tmp_path, monkeypatch, capsys):
    sample = tmp_path / "sample.py"
    sample.write_text(_BAD_SOURCE)
    baseline = tmp_path / "baseline.json"
    code, out, _ = _run_cli(
        [str(sample), "--write-baseline", str(baseline)], monkeypatch, capsys
    )
    assert code == 0
    assert "wrote baseline" in out
    code, out, _ = _run_cli(
        [str(sample), "--baseline", str(baseline)], monkeypatch, capsys
    )
    assert code == 0
    assert "1 baselined" in out


def test_cli_changed_only_smoke(monkeypatch, capsys):
    """--changed-only runs end to end inside the repo work tree."""
    code, _, _ = _run_cli(["src/repro", "--changed-only"], monkeypatch, capsys)
    assert code == 0


# ---------------------------------------------------------------------------
# seeded regressions: what the CI lint job must catch
# ---------------------------------------------------------------------------


def _strip_method(source: str, class_name: str, method_name: str) -> str:
    """Remove one method from one class by line surgery on real source."""
    tree = ast.parse(source)
    lines = source.splitlines(keepends=True)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == method_name
                ):
                    start = min(
                        [item.lineno]
                        + [dec.lineno for dec in item.decorator_list]
                    )
                    return "".join(
                        lines[: start - 1] + lines[item.end_lineno :]
                    )
    raise AssertionError(f"{class_name}.{method_name} not found")


def test_regression_deleting_update_block_fails_lint(tmp_path):
    """Deleting update_block from a real sketch re-introduces PRO004."""
    source = (REPO_ROOT / "src/repro/sketches/countmin.py").read_text()
    broken = _strip_method(source, "CountMinSketch", "update_block")
    mutated = tmp_path / "countmin.py"
    mutated.write_text(broken)
    report = lint.run_lint([str(mutated)], root=REPO_ROOT)
    assert "PRO004" in {finding.rule for finding in report.findings}
    assert lint.exit_code(report) == 1


def test_regression_deleting_estimate_block_fails_lint(tmp_path):
    """Deleting estimate_block from a real sketch re-introduces PRO007."""
    source = (REPO_ROOT / "src/repro/sketches/countmin.py").read_text()
    broken = _strip_method(source, "CountMinSketch", "estimate_block")
    mutated = tmp_path / "countmin.py"
    mutated.write_text(broken)
    report = lint.run_lint([str(mutated)], root=REPO_ROOT)
    assert "PRO007" in {finding.rule for finding in report.findings}
    assert lint.exit_code(report) == 1


def test_regression_renaming_a_metric_fails_lint(tmp_path):
    """Renaming a catalogued metric re-introduces TEL001."""
    source = (REPO_ROOT / "src/repro/engine/coordinator.py").read_text()
    assert 'repro_merge_total' in source
    mutated = tmp_path / "coordinator.py"
    mutated.write_text(
        source.replace("repro_merge_total", "repro_merges_total")
    )
    report = lint.run_lint([str(mutated)], root=REPO_ROOT)
    assert "TEL001" in {finding.rule for finding in report.findings}
    assert lint.exit_code(report) == 1


def test_regression_bare_transport_recv_fails_lint(tmp_path):
    """Dropping the deadline wrapper from a worker read re-introduces PRO009."""
    source = (REPO_ROOT / "src/repro/engine/transport/resident.py").read_text()
    assert "recv_bytes_with_deadline(conn, None)" in source
    mutated = tmp_path / "resident.py"
    mutated.write_text(
        source.replace("recv_bytes_with_deadline(conn, None)", "conn.recv_bytes()")
    )
    report = lint.run_lint([str(mutated)], root=REPO_ROOT)
    assert "PRO009" in {finding.rule for finding in report.findings}
    assert lint.exit_code(report) == 1


def test_regression_unseeded_rng_fails_lint(tmp_path):
    """Dropping the seed from a real RNG construction re-introduces DET001."""
    source = (REPO_ROOT / "src/repro/sketches/stable_lp.py").read_text()
    assert "np.random.default_rng(seed)" in source
    mutated = tmp_path / "stable_lp.py"
    mutated.write_text(
        source.replace("np.random.default_rng(seed)", "np.random.default_rng()")
    )
    report = lint.run_lint([str(mutated)], root=REPO_ROOT)
    assert "DET001" in {finding.rule for finding in report.findings}


# ---------------------------------------------------------------------------
# module CLI smoke (subprocess, as CI invokes it)
# ---------------------------------------------------------------------------


def test_module_invocation_matches_in_process_exit_code():
    """``python -m repro lint src/repro`` exits 0 from a fresh process."""
    env_path = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src/repro"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
