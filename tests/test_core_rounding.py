"""Tests for α-nets (Definition 6.1, Lemma 6.2) and rounding distortion (Lemma 6.4)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.entropy import exact_net_size, net_size_bound
from repro.core.dataset import ColumnQuery
from repro.core.rounding import AlphaNet, rounding_distortion
from repro.errors import InvalidParameterError, QueryError


class TestRoundingDistortion:
    def test_f0_distortion_is_2_to_alpha_d(self):
        assert rounding_distortion(0.25, 20, 0) == pytest.approx(2 ** 5)

    def test_f1_has_no_distortion(self):
        assert rounding_distortion(0.3, 16, 1) == 1.0

    def test_fp_above_one(self):
        assert rounding_distortion(0.1, 20, 2) == pytest.approx(2 ** (0.1 * 20 * 1))
        assert rounding_distortion(0.1, 20, 3) == pytest.approx(2 ** (0.1 * 20 * 2))

    def test_fp_below_one(self):
        assert rounding_distortion(0.1, 20, 0.5) == pytest.approx(2 ** (0.1 * 20 * 0.5))

    def test_distortion_tends_to_one_near_p_equals_one(self):
        # Lemma 6.4 remark: the distortion vanishes as p -> 1 from both sides.
        assert rounding_distortion(0.2, 20, 0.99) < rounding_distortion(0.2, 20, 0.5)
        assert rounding_distortion(0.2, 20, 1.01) < rounding_distortion(0.2, 20, 2.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            rounding_distortion(0.0, 10, 0)
        with pytest.raises(InvalidParameterError):
            rounding_distortion(0.6, 10, 0)
        with pytest.raises(InvalidParameterError):
            rounding_distortion(0.2, 10, -1)


class TestAlphaNetStructure:
    def test_band_edges(self):
        net = AlphaNet(d=20, alpha=0.2)
        assert net.low_size == math.floor(0.3 * 20) == 6
        assert net.high_size == math.ceil(0.7 * 20) == 14

    def test_membership_by_size(self):
        net = AlphaNet(d=10, alpha=0.2)
        assert net.contains(ColumnQuery.of(range(3), 10))
        assert net.contains(ColumnQuery.of(range(8), 10))
        assert not net.contains(ColumnQuery.of(range(5), 10))

    def test_exact_size_below_lemma_6_2_bound(self):
        for d, alpha in [(10, 0.1), (12, 0.2), (16, 0.3), (20, 0.45)]:
            net = AlphaNet(d=d, alpha=alpha)
            assert net.size() <= net.size_bound()
            assert exact_net_size(d, alpha) <= net_size_bound(d, alpha)

    def test_net_is_smaller_than_power_set(self):
        net = AlphaNet(d=14, alpha=0.25)
        assert net.size() < 2**14
        assert net.relative_size() < 1.0

    def test_members_enumeration_matches_size(self):
        net = AlphaNet(d=8, alpha=0.2)
        members = list(net.members())
        assert len(members) == net.size()
        assert all(net.contains(member) for member in members)
        assert len({member.columns for member in members}) == len(members)

    def test_member_guard(self):
        net = AlphaNet(d=20, alpha=0.05)
        with pytest.raises(QueryError):
            list(net.members(max_members=10))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AlphaNet(d=0, alpha=0.2)
        with pytest.raises(InvalidParameterError):
            AlphaNet(d=10, alpha=0.5)


class TestRounding:
    def test_in_net_queries_are_returned_unchanged(self):
        net = AlphaNet(d=10, alpha=0.2)
        query = ColumnQuery.of([0, 1, 2], 10)
        assert net.round_query(query) is query

    def test_rounded_query_lies_in_the_net(self):
        net = AlphaNet(d=12, alpha=0.2)
        for size in range(1, 13):
            query = ColumnQuery.of(range(size), 12)
            rounded = net.round_query(query)
            assert net.contains(rounded)

    def test_rounding_cost_at_most_alpha_d_plus_rounding(self):
        for d, alpha in [(10, 0.2), (16, 0.15), (20, 0.3)]:
            net = AlphaNet(d=d, alpha=alpha)
            limit = math.ceil(alpha * d) + 1
            for size in range(1, d + 1):
                query = ColumnQuery.of(range(size), d)
                assert net.rounding_cost(query) <= limit
            assert net.max_rounding_cost() <= limit

    def test_shrink_rule_produces_subsets(self):
        net = AlphaNet(d=12, alpha=0.2)
        query = ColumnQuery.of(range(6), 12)
        rounded = net.round_query(query, rule="shrink")
        assert rounded.as_set() <= query.as_set()
        assert len(rounded) == net.low_size

    def test_grow_rule_produces_supersets(self):
        net = AlphaNet(d=12, alpha=0.2)
        query = ColumnQuery.of(range(6), 12)
        rounded = net.round_query(query, rule="grow")
        assert rounded.as_set() >= query.as_set()
        assert len(rounded) == net.high_size

    def test_dimension_mismatch_rejected(self):
        net = AlphaNet(d=12, alpha=0.2)
        with pytest.raises(QueryError):
            net.round_query(ColumnQuery.of([0], 10))

    def test_distortion_accessor_matches_module_function(self):
        net = AlphaNet(d=16, alpha=0.25)
        assert net.distortion(0) == rounding_distortion(0.25, 16, 0)
        assert net.distortion(2) == rounding_distortion(0.25, 16, 2)
