"""Property tests for the counted ``update_block`` sketch kernels.

The contract behind the vectorized ingest path: for every sketch,
``update_block(items, counts)`` must leave the summary in the same state as
the sequential loop ``for item, count in zip(items, counts): update(item,
count)``.  For the order-independent sketches (Count-Min, Count-Sketch, AMS,
KMV, HyperLogLog, linear counting, BJKST, StableLp) the equivalence is
*bit-identical* — asserted here on the full ``state_dict()``, across random
seeds, duplicate-heavy blocks, empty blocks and explicit multiplicities.
The order-dependent Misra–Gries/SpaceSaving trackers keep the documented
per-item fallback: replaying the given batch is exact by construction, and
feeding a *deduplicated counted* batch (what the α-net block path does) is
answer-equivalent — every guarantee of the summary still holds — which is
tested against ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sketches import (
    AMSSketch,
    BJKSTSketch,
    CountMinSketch,
    CountSketch,
    HyperLogLog,
    KMVSketch,
    LinearCounting,
    MisraGries,
    SpaceSaving,
    StableLpSketch,
    collapse_block,
    stable_hash64,
    stable_hash64_patterns,
)
from repro.sketches.hashing import (
    MultiplyShiftHash,
    PolynomialHash,
    TabulationHash,
    bit_length64,
    trailing_zeros64,
)

# Small widths/depths keep the exhaustive per-item reference loops fast; the
# kernels themselves are parameter-independent.
ORDER_INDEPENDENT = {
    "countmin": lambda seed: CountMinSketch(width=29, depth=3, seed=seed),
    "countsketch": lambda seed: CountSketch(width=31, depth=3, seed=seed),
    "ams": lambda seed: AMSSketch(width=6, depth=2, seed=seed),
    "kmv": lambda seed: KMVSketch(k=12, seed=seed),
    "hyperloglog": lambda seed: HyperLogLog(precision=5, seed=seed),
    "linear-counting": lambda seed: LinearCounting(bitmap_bits=64, seed=seed),
    "bjkst": lambda seed: BJKSTSketch(capacity=8, seed=seed),
    "stable-lp": lambda seed: StableLpSketch(p=1.0, width=12, depth=2, seed=seed),
}


def assert_state_dicts_equal(expected: dict, actual: dict, context: str) -> None:
    """Exact (bit-level) equality of two ``state_dict`` values."""
    assert expected.keys() == actual.keys(), context
    for key in expected:
        want, got = expected[key], actual[key]
        if isinstance(want, np.ndarray):
            assert isinstance(got, np.ndarray), f"{context}: {key} type"
            assert want.dtype == got.dtype, f"{context}: {key} dtype"
            assert np.array_equal(want, got), f"{context}: {key} values"
        else:
            assert type(want) is type(got), f"{context}: {key} type"
            assert want == got, f"{context}: {key} values"


def _sequential_reference(factory, seed, block, counts):
    sketch = factory(seed)
    effective = [1] * len(block) if counts is None else list(counts)
    for row, count in zip(block.tolist(), effective):
        sketch.update(tuple(row), int(count))
    return sketch


# -- order-independent kernels: bit-identical to the sequential loop ---------------


@pytest.mark.parametrize("name", sorted(ORDER_INDEPENDENT))
@settings(max_examples=15, deadline=None)
@given(
    data=st.data(),
    n_items=st.integers(min_value=0, max_value=60),
    value_span=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=1000),
    with_counts=st.booleans(),
)
def test_update_block_is_bit_identical(name, data, n_items, value_span, seed, with_counts):
    """``update_block`` ≡ sequential ``update`` on the same (item, count) batch.

    ``value_span`` small relative to ``n_items`` makes blocks duplicate-heavy,
    exercising the ``np.unique`` collapse; ``n_items = 0`` exercises empty
    blocks.
    """
    factory = ORDER_INDEPENDENT[name]
    rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=10_000)))
    block = rng.integers(-value_span, value_span, size=(n_items, 3), dtype=np.int64)
    counts = (
        rng.integers(1, 5, size=n_items, dtype=np.int64) if with_counts else None
    )
    reference = _sequential_reference(factory, seed, block, counts)
    batched = factory(seed)
    batched.update_block(block, counts)
    assert_state_dicts_equal(
        reference.state_dict(),
        batched.state_dict(),
        f"{name} seed={seed} n={n_items}",
    )
    assert batched.items_processed == reference.items_processed


@pytest.mark.parametrize("name", sorted(ORDER_INDEPENDENT))
def test_update_block_split_points_do_not_matter(name):
    """Any chunking of the same stream lands in the same state (integer
    sketches) / answers identically (StableLp float counters are only
    guaranteed bitwise-stable for identical chunkings)."""
    factory = ORDER_INDEPENDENT[name]
    rng = np.random.default_rng(7)
    block = rng.integers(0, 9, size=(120, 4), dtype=np.int64)
    whole = factory(5)
    whole.update_block(block)
    chunked = factory(5)
    for start, stop in ((0, 13), (13, 14), (14, 90), (90, 120)):
        chunked.update_block(block[start:stop])
    if name == "stable-lp":
        assert np.allclose(
            whole.state_dict()["counters"], chunked.state_dict()["counters"]
        )
        assert whole.items_processed == chunked.items_processed
    else:
        assert_state_dicts_equal(
            whole.state_dict(), chunked.state_dict(), f"{name} chunked"
        )


@pytest.mark.parametrize(
    "name",
    [n for n in sorted(ORDER_INDEPENDENT) if n != "stable-lp"],
)
def test_update_block_accepts_pre_collapsed_batches(name):
    """Deduplicated counted batches (the α-net path) are bit-identical too
    for the integer-state sketches — counted scatter commutes exactly."""
    factory = ORDER_INDEPENDENT[name]
    rng = np.random.default_rng(3)
    block = rng.integers(0, 6, size=(80, 3), dtype=np.int64)
    reference = _sequential_reference(factory, 11, block, None)
    unique, counts = collapse_block(block)
    assert unique.shape[0] < block.shape[0]  # the workload is duplicate-heavy
    collapsed = factory(11)
    collapsed.update_block(unique, counts)
    assert_state_dicts_equal(
        reference.state_dict(), collapsed.state_dict(), f"{name} collapsed"
    )


def test_update_block_falls_back_for_non_array_items():
    """Arbitrary hashable iterables run through the per-item fallback."""
    direct = CountMinSketch(width=17, depth=2, seed=1)
    for item in ("a", "b", "a"):
        direct.update(item)
    batched = CountMinSketch(width=17, depth=2, seed=1)
    batched.update_block(["a", "b", "a"])
    assert_state_dicts_equal(direct.state_dict(), batched.state_dict(), "fallback")


def test_update_block_validates_input():
    sketch = CountMinSketch(width=17, depth=2, seed=1)
    with pytest.raises(InvalidParameterError):
        sketch.update_block(np.zeros(4, dtype=np.int64))  # 1-D
    with pytest.raises(InvalidParameterError):
        sketch.update_block(np.zeros((3, 2), dtype=np.float64))  # dtype
    with pytest.raises(InvalidParameterError):
        sketch.update_block(np.zeros((3, 2), dtype=np.int64), counts=[1, 2])  # length
    with pytest.raises(InvalidParameterError):
        sketch.update_block(np.zeros((3, 2), dtype=np.int64), counts=[1, 0, 2])  # < 1
    with pytest.raises(InvalidParameterError):
        sketch.update_block(
            np.zeros((2, 2), dtype=np.int64), counts=np.array([[1], [2]])
        )  # 2-D counts
    sketch.update_block(np.zeros((0, 5), dtype=np.int64))  # empty block is a no-op
    assert sketch.items_processed == 0


def test_update_block_rejects_unrepresentable_uint64():
    """uint64 values above the int64 range would wrap silently under
    astype(int64) and hash differently from the scalar path — rejected."""
    sketch = CountMinSketch(width=17, depth=2, seed=1)
    with pytest.raises(InvalidParameterError, match="int64"):
        sketch.update_block(np.array([[2**63 + 5]], dtype=np.uint64))
    # In-range uint64 blocks stay bit-identical to the tuple path.
    block = np.array([[7, 2**40], [7, 2**40], [1, 2]], dtype=np.uint64)
    reference = CountMinSketch(width=17, depth=2, seed=1)
    for row in block.tolist():
        reference.update(tuple(row))
    sketch.update_block(block)
    assert_state_dicts_equal(reference.state_dict(), sketch.state_dict(), "uint64")


# -- the hashability satellite -----------------------------------------------------


@pytest.mark.parametrize("factory", [CountMinSketch, CountSketch])
def test_point_sketches_reject_unhashable_items(factory):
    """ndarray rows slipping through the ``Hashable`` hint raise a clear
    error naming the offending type instead of a bare ``TypeError``."""
    sketch = factory(width=17, depth=2, seed=0)
    with pytest.raises(InvalidParameterError, match="ndarray"):
        sketch.update(np.array([1, 2, 3]))


# -- Misra-Gries / SpaceSaving: documented fallback --------------------------------


@pytest.mark.parametrize("factory", [lambda: MisraGries(k=6), lambda: SpaceSaving(k=6)])
def test_tracker_update_block_replays_the_given_order(factory):
    """The per-item fallback is exact for the batch it is given."""
    rng = np.random.default_rng(5)
    block = rng.integers(0, 10, size=(90, 2), dtype=np.int64)
    reference = factory()
    for row in block.tolist():
        reference.update(tuple(row))
    batched = factory()
    batched.update_block(block)
    assert_state_dicts_equal(reference.state_dict(), batched.state_dict(), "tracker")


@pytest.mark.parametrize(
    "factory,bound_items",
    [
        (lambda: MisraGries(k=8), lambda s: s._items_processed / (8 + 1)),
        (lambda: SpaceSaving(k=8), lambda s: s._items_processed / 8),
    ],
)
def test_tracker_collapsed_batches_are_answer_equivalent(factory, bound_items):
    """Deduplicated counted batches keep the trackers' guarantees.

    The final counters differ from the streamed order (the trackers are
    order-dependent) but every estimate stays within the summary's additive
    error bound of the true frequency, and every true heavy hitter above the
    guarantee threshold is reported.
    """
    rng = np.random.default_rng(9)
    # Zipf-flavoured stream: a few heavy patterns, a long tail.
    heavy = np.repeat(np.arange(3, dtype=np.int64), 40)
    tail = rng.integers(3, 40, size=60, dtype=np.int64)
    values = np.concatenate([heavy, tail])
    rng.shuffle(values)
    block = np.stack([values, values + 1], axis=1)

    truth: dict[tuple[int, ...], int] = {}
    for row in block.tolist():
        truth[tuple(row)] = truth.get(tuple(row), 0) + 1

    sketch = factory()
    unique, counts = collapse_block(block)
    sketch.update_block(unique, counts)
    bound = bound_items(sketch)
    for pattern, frequency in truth.items():
        assert abs(sketch.estimate(pattern) - frequency) <= bound
    for pattern, frequency in truth.items():
        if frequency > bound:
            assert sketch.estimate(pattern) > 0, f"heavy {pattern} lost"


# -- block hashing layer -----------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n_rows=st.integers(min_value=0, max_value=40),
    width=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32),
    low=st.integers(min_value=-(10**9), max_value=0),
)
def test_stable_hash64_patterns_matches_scalar(n_rows, width, seed, low):
    rng = np.random.default_rng(abs(low) + n_rows)
    block = rng.integers(low, 10**9, size=(n_rows, width), dtype=np.int64)
    keys = stable_hash64_patterns(block, seed)
    assert keys.dtype == np.uint64
    for key, row in zip(keys, block):
        assert int(key) == stable_hash64(tuple(int(v) for v in row), seed)


@settings(max_examples=10, deadline=None)
@given(
    family_seed=st.integers(min_value=0, max_value=10_000),
    item_seed=st.integers(min_value=0, max_value=10_000),
)
def test_evaluate_block_matches_scalar_calls(family_seed, item_seed):
    rng = np.random.default_rng(item_seed)
    block = rng.integers(-50, 50, size=(30, 3), dtype=np.int64)
    items = [tuple(int(v) for v in row) for row in block.tolist()]
    functions = [
        MultiplyShiftHash(output_bits=9, seed=family_seed),
        MultiplyShiftHash(output_bits=64, seed=family_seed + 1),
        PolynomialHash(independence=2, range_size=53, seed=family_seed),
        PolynomialHash(independence=4, range_size=None, seed=family_seed + 1),
        TabulationHash(output_bits=13, seed=family_seed),
    ]
    for function in functions:
        keys = stable_hash64_patterns(block, function.seed)
        assert [int(v) for v in function.evaluate_block(keys)] == [
            function(item) for item in items
        ]
    sign_hash = PolynomialHash(independence=4, seed=family_seed + 2)
    keys = stable_hash64_patterns(block, sign_hash.seed)
    assert [int(v) for v in sign_hash.sign_block(keys)] == [
        sign_hash.sign(item) for item in items
    ]


def test_evaluate_block_validates_keys():
    function = MultiplyShiftHash(output_bits=8, seed=0)
    with pytest.raises(InvalidParameterError):
        function.evaluate_block(np.zeros((2, 2), dtype=np.uint64))  # 2-D
    with pytest.raises(InvalidParameterError):
        function.evaluate_block(np.zeros(3, dtype=np.int64))  # signed dtype


def test_bit_utilities_match_python_ints():
    rng = np.random.default_rng(0)
    values = np.concatenate(
        [
            np.array([0, 1, 2, 3, (1 << 64) - 1, 1 << 63], dtype=np.uint64),
            rng.integers(0, 1 << 63, size=500, dtype=np.uint64),
        ]
    )
    assert [int(v) for v in bit_length64(values)] == [
        int(v).bit_length() for v in values
    ]
    expected = [
        64 if int(v) == 0 else (int(v) & -int(v)).bit_length() - 1 for v in values
    ]
    assert [int(v) for v in trailing_zeros64(values)] == expected


def test_collapse_block_preserves_first_occurrence_order():
    block = np.array([[2, 2], [0, 1], [2, 2], [0, 0], [0, 1], [2, 2]], dtype=np.int64)
    unique, counts = collapse_block(block)
    assert unique.tolist() == [[2, 2], [0, 1], [0, 0]]
    assert counts.tolist() == [3, 2, 1]
    weighted, summed = collapse_block(block, np.array([1, 2, 3, 4, 5, 6]))
    assert weighted.tolist() == [[2, 2], [0, 1], [0, 0]]
    assert summed.tolist() == [10, 7, 4]
