"""Tests for the streaming substrate: row streams, runner and space accounting."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.core.exhaustive import ExactBaseline
from repro.core.uniform_sample import UniformSampleEstimator
from repro.errors import DimensionError, InvalidParameterError
from repro.streaming.memory import (
    compare_space,
    format_bits,
    naive_storage_bits,
    per_subset_summaries,
)
from repro.streaming.runner import QueryMeasurement, StreamRunner
from repro.streaming.stream import RowStream


@pytest.fixture()
def dataset() -> Dataset:
    return Dataset.random(n_rows=300, n_columns=6, seed=17)


class TestRowStream:
    def test_stream_from_dataset_replays(self, dataset):
        stream = RowStream(dataset)
        assert stream.count() == 300
        assert stream.count() == 300  # replayable

    def test_from_rows_and_take(self):
        stream = RowStream.from_rows([(0, 1), (1, 1), (1, 0)], n_columns=2)
        assert stream.take(2) == [(0, 1), (1, 1)]
        assert stream.count() == 3

    def test_chunking_covers_all_rows(self, dataset):
        stream = RowStream(dataset)
        chunks = list(stream.chunks(64))
        assert sum(len(chunk) for chunk in chunks) == 300
        assert all(len(chunk) <= 64 for chunk in chunks)

    def test_shuffled_preserves_the_multiset(self, dataset):
        stream = RowStream(dataset)
        shuffled = stream.shuffled(seed=1)
        assert sorted(stream) == sorted(shuffled)
        assert list(stream) != list(shuffled)

    def test_map_rows(self):
        stream = RowStream.from_rows([(0, 1), (1, 0)], n_columns=2)
        flipped = stream.map_rows(lambda row: tuple(1 - s for s in row))
        assert list(flipped) == [(1, 0), (0, 1)]

    def test_map_rows_honours_explicit_falsy_arguments(self):
        # An explicit (invalid) n_columns=0 must raise, not silently fall
        # back to the source's width the way `n_columns or default` did.
        stream = RowStream.from_rows([(0, 1), (1, 0)], n_columns=2)
        with pytest.raises(DimensionError):
            stream.map_rows(lambda row: row, n_columns=0)
        with pytest.raises(InvalidParameterError):
            stream.map_rows(lambda row: row, alphabet_size=0)

    def test_map_rows_explicit_geometry_is_used(self):
        stream = RowStream.from_rows([(0, 1), (1, 0)], n_columns=2)
        widened = stream.map_rows(
            lambda row: row + (2,), n_columns=3, alphabet_size=3
        )
        assert widened.n_columns == 3
        assert widened.alphabet_size == 3
        assert list(widened) == [(0, 1, 2), (1, 0, 2)]

    def test_map_rows_validates_transform_width_on_first_row(self):
        stream = RowStream.from_rows([(0, 1), (1, 0)], n_columns=2)
        truncating = stream.map_rows(lambda row: row[:1])
        with pytest.raises(DimensionError, match="transform"):
            next(iter(truncating))

    def test_iter_batches_covers_stream_in_order(self, dataset):
        stream = RowStream(dataset)
        rows = []
        expected_start = 0
        for start, block in stream.iter_batches(64):
            assert start == expected_start
            assert block.shape[1] == 6
            assert block.shape[0] <= 64
            rows.extend(tuple(row) for row in block.tolist())
            expected_start += block.shape[0]
        assert rows == list(stream)

    def test_iter_batches_generator_source_matches_dataset_source(self, dataset):
        materialised = RowStream.from_rows(list(RowStream(dataset)), n_columns=6)
        from_dataset = [
            (start, block.tolist())
            for start, block in RowStream(dataset).iter_batches(50)
        ]
        from_generator = [
            (start, block.tolist()) for start, block in materialised.iter_batches(50)
        ]
        assert from_dataset == from_generator

    def test_iter_batches_validates_batch_size(self, dataset):
        with pytest.raises(InvalidParameterError):
            list(RowStream(dataset).iter_batches(0))

    def test_row_width_enforced(self):
        stream = RowStream(lambda: iter([(0, 1, 1)]), n_columns=2, alphabet_size=2)
        with pytest.raises(DimensionError):
            list(stream)

    def test_generator_source_requires_metadata(self):
        with pytest.raises(InvalidParameterError):
            RowStream(lambda: iter([(0,)]))

    def test_to_dataset_roundtrip(self, dataset):
        assert RowStream(dataset).to_dataset().shape == dataset.shape

    @pytest.mark.parametrize("policy", ["round_robin", "hash"])
    def test_shard_substreams_partition_the_stream(self, dataset, policy):
        stream = RowStream(dataset)
        shards = [stream.shard(i, 3, policy=policy) for i in range(3)]
        scattered = [row for shard in shards for row in shard]
        assert sorted(scattered) == sorted(stream)

    def test_shard_validation(self, dataset):
        stream = RowStream(dataset)
        with pytest.raises(InvalidParameterError):
            stream.shard(0, 0)
        with pytest.raises(InvalidParameterError):
            stream.shard(2, 2)
        with pytest.raises(InvalidParameterError):
            stream.shard(0, 2, policy="modulo")


class TestStreamRunner:
    def test_exact_estimator_has_unit_error(self, dataset):
        runner = StreamRunner(
            RowStream(dataset),
            {"exact": lambda: ExactBaseline(n_columns=6)},
        )
        queries = [ColumnQuery.of([0, 1], 6), ColumnQuery.of([2, 3, 4], 6)]
        report = runner.run_fp_queries(queries, p=0)
        assert report.worst_multiplicative_error("exact") == pytest.approx(1.0)
        assert report.space_bits("exact") > 0

    def test_multiple_estimators_reported_separately(self, dataset):
        runner = StreamRunner(
            RowStream(dataset),
            {
                "exact": lambda: ExactBaseline(n_columns=6),
                "usample": lambda: UniformSampleEstimator(
                    n_columns=6, sample_size=128, seed=0
                ),
            },
        )
        report = runner.run_fp_queries([ColumnQuery.of([0, 1, 2], 6)], p=1)
        assert len(report.for_estimator("exact")) == 1
        assert len(report.for_estimator("usample")) == 1
        # F1 is exact for both.
        assert report.mean_multiplicative_error("usample") == pytest.approx(1.0)

    def test_unknown_estimator_name_raises(self, dataset):
        runner = StreamRunner(
            RowStream(dataset), {"exact": lambda: ExactBaseline(n_columns=6)}
        )
        report = runner.run_fp_queries([ColumnQuery.of([0], 6)], p=0)
        with pytest.raises(InvalidParameterError):
            report.worst_multiplicative_error("missing")

    def test_requires_queries_and_estimators(self, dataset):
        with pytest.raises(InvalidParameterError):
            StreamRunner(RowStream(dataset), {})
        runner = StreamRunner(
            RowStream(dataset), {"exact": lambda: ExactBaseline(n_columns=6)}
        )
        with pytest.raises(InvalidParameterError):
            runner.run_fp_queries([], p=0)


class TestQueryMeasurementErrors:
    @staticmethod
    def _measurement(estimate: float, exact: float) -> QueryMeasurement:
        return QueryMeasurement(
            estimator_name="m",
            query=ColumnQuery.of([0], 2),
            p=0,
            estimate=estimate,
            exact=exact,
            space_bits=1,
            observe_seconds=0.0,
            query_seconds=0.0,
        )

    def test_both_zero_is_a_perfect_answer(self):
        measurement = self._measurement(estimate=0.0, exact=0.0)
        assert measurement.multiplicative_error == 1.0
        assert measurement.signs_agree

    def test_zero_exact_with_positive_estimate_is_finite(self):
        # The benign overshoot of an empty projection: finite penalty, and
        # no sign disagreement (both values are on the non-negative side).
        measurement = self._measurement(estimate=4.0, exact=0.0)
        assert measurement.multiplicative_error == pytest.approx(5.0)
        assert measurement.signs_agree

    def test_zero_estimate_of_positive_mass_stays_infinite(self):
        # Missing all mass is an unbounded multiplicative miss, but not a
        # sign disagreement: zero sits on the same side as any non-negative
        # value.
        measurement = self._measurement(estimate=0.0, exact=9.0)
        assert measurement.multiplicative_error == float("inf")
        assert measurement.signs_agree

    def test_negative_estimate_is_a_sign_disagreement(self):
        measurement = self._measurement(estimate=-3.0, exact=7.0)
        assert measurement.multiplicative_error == float("inf")
        assert not measurement.signs_agree

    def test_negative_pairs_agree(self):
        # Both strictly negative (or negative paired with zero) is the same
        # side of zero, not a disagreement.
        assert self._measurement(estimate=-2.0, exact=-6.0).signs_agree
        assert self._measurement(estimate=-2.0, exact=0.0).signs_agree
        assert self._measurement(estimate=0.0, exact=-5.0).signs_agree
        assert not self._measurement(estimate=3.0, exact=-5.0).signs_agree

    def test_zero_boundary_distinguishable_from_sign_disagreement(self):
        at_boundary = self._measurement(estimate=4.0, exact=0.0)
        disagreeing = self._measurement(estimate=-4.0, exact=2.0)
        assert at_boundary.multiplicative_error < float("inf")
        assert at_boundary.signs_agree
        assert disagreeing.multiplicative_error == float("inf")
        assert not disagreeing.signs_agree

    def test_ordinary_ratio_unchanged(self):
        measurement = self._measurement(estimate=8.0, exact=4.0)
        assert measurement.multiplicative_error == pytest.approx(2.0)
        assert measurement.signs_agree


class TestSpaceAccounting:
    def test_format_bits_units(self):
        assert format_bits(100) == "100 bits"
        assert "KiB" in format_bits(8 * 4096)
        assert "MiB" in format_bits(8 * 4 * 1024 * 1024)

    def test_naive_storage(self):
        assert naive_storage_bits(100, 10, 2) == 1000
        assert naive_storage_bits(100, 10, 4) == 2000

    def test_per_subset_summaries(self):
        assert per_subset_summaries(10, 3) == 120
        with pytest.raises(InvalidParameterError):
            per_subset_summaries(10, 0)

    def test_compare_space(self):
        comparison = compare_space(
            summary_bits=500, n_rows=100, n_columns=10, query_size=3
        )
        assert comparison.fraction_of_naive == pytest.approx(0.5)
        assert comparison.saves_space
        assert comparison.all_subsets == 120

    def test_compare_space_defaults_to_power_set(self):
        comparison = compare_space(summary_bits=10, n_rows=1, n_columns=5)
        assert comparison.all_subsets == 32
