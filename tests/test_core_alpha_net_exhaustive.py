"""Tests for the α-net estimator (Algorithm 1) and the naïve baselines."""

from __future__ import annotations

import pytest

from repro.core.alpha_net import AlphaNetEstimator, SketchPlan
from repro.core.dataset import ColumnQuery, Dataset
from repro.core.exhaustive import AllSubsetsBaseline, ExactBaseline
from repro.core.frequency import FrequencyVector
from repro.errors import EstimationError, InvalidParameterError
from repro.sketches.misra_gries import MisraGries


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    return Dataset.random(n_rows=400, n_columns=8, alphabet_size=2, seed=21)


@pytest.fixture(scope="module")
def f0_estimator(dataset) -> AlphaNetEstimator:
    estimator = AlphaNetEstimator(
        n_columns=8, alpha=0.25, plan=SketchPlan.default_f0(epsilon=0.2, seed=9)
    )
    estimator.observe(dataset)
    return estimator


class TestAlphaNetEstimatorStructure:
    def test_member_count_obeys_lemma_6_2(self, f0_estimator):
        assert f0_estimator.member_count <= f0_estimator.net.size_bound()
        assert f0_estimator.member_count < 2**8

    def test_requires_at_least_one_factory(self):
        with pytest.raises(InvalidParameterError):
            AlphaNetEstimator(n_columns=6, alpha=0.2, plan=SketchPlan())

    def test_net_guard(self):
        with pytest.raises(Exception):
            AlphaNetEstimator(
                n_columns=18,
                alpha=0.05,
                plan=SketchPlan.default_f0(),
                max_net_members=100,
            )

    def test_guarantee_combines_beta_and_distortion(self, f0_estimator):
        guarantee = f0_estimator.guarantee(p=0, beta=1.2)
        assert guarantee.approximation_factor == pytest.approx(
            1.2 * f0_estimator.net.distortion(0)
        )
        assert guarantee.sketch_count == f0_estimator.member_count
        assert guarantee.sketch_count <= guarantee.sketch_count_bound


class TestAlphaNetF0Queries:
    def test_in_net_query_is_answered_within_sketch_error(self, dataset, f0_estimator):
        query = ColumnQuery.of([0, 1], 8)  # size 2 = low band, in the net
        assert f0_estimator.net.contains(query)
        exact = FrequencyVector.from_dataset(dataset, query).distinct_patterns()
        estimate = f0_estimator.estimate_fp(query, 0)
        assert abs(estimate - exact) / exact < 0.5

    def test_out_of_net_query_respects_theorem_6_5(self, dataset, f0_estimator):
        query = ColumnQuery.of([0, 2, 4, 6], 8)  # size 4 = mid band, rounded
        assert not f0_estimator.net.contains(query)
        exact = FrequencyVector.from_dataset(dataset, query).distinct_patterns()
        estimate = f0_estimator.estimate_fp(query, 0)
        allowed = 1.5 * f0_estimator.net.distortion(0)  # beta * r(alpha, F0)
        ratio = max(estimate / exact, exact / estimate)
        assert ratio <= allowed

    def test_rounded_query_is_a_net_member(self, f0_estimator):
        query = ColumnQuery.of([1, 3, 5, 7], 8)
        rounded = f0_estimator.rounded_query(query)
        assert f0_estimator.net.contains(rounded)

    def test_f1_query_is_exact_row_count(self, dataset, f0_estimator):
        assert f0_estimator.estimate_fp(ColumnQuery.of([0, 1, 2], 8), 1) == float(
            dataset.n_rows
        )

    def test_moment_query_without_moment_sketches_fails(self, f0_estimator):
        with pytest.raises(EstimationError):
            f0_estimator.estimate_fp(ColumnQuery.of([0, 1], 8), 2)

    def test_dimension_mismatch_rejected(self, f0_estimator):
        with pytest.raises(EstimationError):
            f0_estimator.estimate_fp(ColumnQuery.of([0], 5), 0)


class TestAlphaNetMomentAndPointQueries:
    def test_f2_estimation_with_stable_sketches(self, dataset):
        estimator = AlphaNetEstimator(
            n_columns=8,
            alpha=0.25,
            plan=SketchPlan.default_fp(p=2.0, epsilon=0.3, seed=4),
        )
        # A smaller stream keeps the stable-sketch updates fast.
        subset = Dataset(dataset.to_array()[:150], alphabet_size=2)
        estimator.observe(subset)
        query = ColumnQuery.of([0, 1], 8)
        exact = FrequencyVector.from_dataset(subset, query).frequency_moment(2)
        estimate = estimator.estimate_fp(query, 2)
        assert max(estimate / exact, exact / estimate) < 2.0

    def test_point_query_with_countmin_plan(self, dataset):
        estimator = AlphaNetEstimator(
            n_columns=8, alpha=0.25, plan=SketchPlan.default_point(epsilon=0.02, seed=5)
        )
        estimator.observe(dataset)
        query = ColumnQuery.of([0, 1], 8)
        exact = FrequencyVector.from_dataset(dataset, query)
        pattern = max(exact.counts, key=exact.counts.get)
        estimate = estimator.estimate_frequency(query, pattern)
        assert estimate >= exact.frequency(pattern)  # CountMin overestimates
        assert estimate <= exact.frequency(pattern) + 0.1 * dataset.n_rows

    def test_heavy_hitters_with_tracking_sketch(self, dataset):
        plan = SketchPlan(point_factory=lambda index: MisraGries(k=64))
        estimator = AlphaNetEstimator(n_columns=8, alpha=0.25, plan=plan)
        estimator.observe(dataset)
        query = ColumnQuery.of([0, 1], 8)
        exact = FrequencyVector.from_dataset(dataset, query)
        top_pattern = max(exact.counts, key=exact.counts.get)
        report = estimator.heavy_hitters(query, phi=0.15)
        assert report, "expected at least one heavy hitter to be reported"
        assert any(
            pattern[: len(top_pattern)] == top_pattern or pattern == top_pattern
            for pattern in report
        )

    def test_heavy_hitters_without_tracking_sketch_fails(self, dataset):
        estimator = AlphaNetEstimator(
            n_columns=8, alpha=0.25, plan=SketchPlan.default_point(epsilon=0.05)
        )
        estimator.observe(Dataset(dataset.to_array()[:50], alphabet_size=2))
        with pytest.raises(EstimationError):
            estimator.heavy_hitters(ColumnQuery.of([0, 1], 8), phi=0.2)


class TestNeighbourRuleAblation:
    def test_rules_produce_valid_but_different_roundings(self, dataset):
        shrink = AlphaNetEstimator(
            n_columns=8,
            alpha=0.25,
            plan=SketchPlan.default_f0(epsilon=0.3),
            neighbour_rule="shrink",
        )
        grow = AlphaNetEstimator(
            n_columns=8,
            alpha=0.25,
            plan=SketchPlan.default_f0(epsilon=0.3),
            neighbour_rule="grow",
        )
        query = ColumnQuery.of([0, 2, 4, 6], 8)
        assert len(shrink.rounded_query(query)) < len(query) < len(
            grow.rounded_query(query)
        )


class TestExactBaseline:
    def test_answers_every_query_exactly(self, dataset):
        baseline = ExactBaseline(n_columns=8)
        baseline.observe(dataset)
        query = ColumnQuery.of([1, 4, 6], 8)
        exact = FrequencyVector.from_dataset(dataset, query)
        assert baseline.estimate_fp(query, 0) == exact.distinct_patterns()
        assert baseline.estimate_fp(query, 2) == exact.frequency_moment(2)
        pattern = next(iter(exact.counts))
        assert baseline.estimate_frequency(query, pattern) == exact.frequency(pattern)
        assert baseline.heavy_hitters(query, phi=0.2) == {
            k: float(v) for k, v in exact.heavy_hitters(0.2).items()
        }

    def test_space_grows_linearly_with_rows(self, dataset):
        baseline = ExactBaseline(n_columns=8)
        baseline.observe(dataset)
        assert baseline.size_in_bits() == dataset.n_rows * 8

    def test_round_trip_to_dataset(self, dataset):
        baseline = ExactBaseline(n_columns=8)
        baseline.observe(dataset)
        assert baseline.to_dataset().shape == dataset.shape

    def test_empty_baseline_cannot_materialise(self):
        with pytest.raises(EstimationError):
            ExactBaseline(n_columns=4).to_dataset()


class TestAllSubsetsBaseline:
    def test_materialises_requested_sizes_only(self, dataset):
        baseline = AllSubsetsBaseline(n_columns=8, subset_sizes=[2])
        assert baseline.subset_count == 28
        baseline.observe(Dataset(dataset.to_array()[:100], alphabet_size=2))
        query = ColumnQuery.of([0, 1], 8)
        estimate = baseline.estimate_fp(query, 0)
        exact = FrequencyVector.from_dataset(
            Dataset(dataset.to_array()[:100], alphabet_size=2), query
        ).distinct_patterns()
        assert abs(estimate - exact) <= max(2, 0.4 * exact)

    def test_unknown_query_size_is_rejected(self, dataset):
        baseline = AllSubsetsBaseline(n_columns=8, subset_sizes=[2])
        baseline.observe(Dataset(dataset.to_array()[:10], alphabet_size=2))
        with pytest.raises(EstimationError):
            baseline.estimate_fp(ColumnQuery.of([0, 1, 2], 8), 0)

    def test_guard_against_exponential_blowup(self):
        with pytest.raises(InvalidParameterError):
            AllSubsetsBaseline(n_columns=30, max_subsets=1000)

    def test_invalid_subset_sizes(self):
        with pytest.raises(InvalidParameterError):
            AllSubsetsBaseline(n_columns=8, subset_sizes=[0])
