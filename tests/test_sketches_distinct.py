"""Tests for the distinct-count sketches (KMV, BJKST, HyperLogLog, linear counting)."""

from __future__ import annotations

import pytest

from repro.errors import EstimationError, InvalidParameterError
from repro.sketches.bjkst import BJKSTSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kmv import KMVSketch, kmv_size_for_epsilon
from repro.sketches.linear_counting import LinearCounting

DISTINCT_SKETCHES = [
    lambda seed: KMVSketch(k=512, seed=seed),
    lambda seed: BJKSTSketch(capacity=1024, seed=seed),
    lambda seed: HyperLogLog(precision=12, seed=seed),
    lambda seed: LinearCounting(bitmap_bits=1 << 15, seed=seed),
]


@pytest.mark.parametrize("factory", DISTINCT_SKETCHES)
class TestDistinctSketchContract:
    def test_empty_sketch_estimates_zero(self, factory):
        assert factory(0).estimate() == 0.0

    def test_exactness_on_tiny_streams(self, factory):
        sketch = factory(1)
        for item in ["a", "b", "c", "a", "b"]:
            sketch.update(item)
        assert sketch.estimate() == pytest.approx(3, abs=1.0)
        assert sketch.items_processed == 5

    def test_estimate_within_20_percent_on_large_stream(self, factory):
        sketch = factory(2)
        true_distinct = 5_000
        for value in range(true_distinct):
            sketch.update(value)
            if value % 3 == 0:  # duplicates must not change the answer
                sketch.update(value)
        estimate = sketch.estimate()
        assert abs(estimate - true_distinct) / true_distinct < 0.2

    def test_merge_equals_union(self, factory):
        left = factory(3)
        right = factory(3)
        for value in range(0, 3000):
            left.update(value)
        for value in range(1500, 4500):
            right.update(value)
        left.merge(right)
        combined = left.estimate()
        assert abs(combined - 4500) / 4500 < 0.25

    def test_merge_rejects_mismatched_configuration(self, factory):
        left = factory(1)
        right = factory(2)  # different seed
        with pytest.raises(InvalidParameterError):
            left.merge(right)

    def test_update_rejects_nonpositive_count(self, factory):
        with pytest.raises(InvalidParameterError):
            factory(0).update("x", count=0)

    def test_size_in_bits_positive_and_stable(self, factory):
        sketch = factory(0)
        before = sketch.size_in_bits()
        for value in range(1000):
            sketch.update(value)
        assert sketch.size_in_bits() == before > 0


class TestKMVSpecifics:
    def test_size_for_epsilon_monotone(self):
        assert kmv_size_for_epsilon(0.05) > kmv_size_for_epsilon(0.2)

    def test_from_epsilon_accuracy(self):
        sketch = KMVSketch.from_epsilon(0.1, seed=1)
        for value in range(20_000):
            sketch.update(value)
        assert abs(sketch.estimate() - 20_000) / 20_000 < 0.1

    def test_minimum_values_sorted_and_bounded(self):
        sketch = KMVSketch(k=16, seed=0)
        for value in range(1000):
            sketch.update(value)
        minima = list(sketch.minimum_values())
        assert minima == sorted(minima)
        assert len(minima) == 16

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            KMVSketch(k=1)


class TestBJKSTSpecifics:
    def test_level_increases_under_pressure(self):
        sketch = BJKSTSketch(capacity=16, seed=0)
        for value in range(5000):
            sketch.update(value)
        assert sketch.level > 0
        assert abs(sketch.estimate() - 5000) / 5000 < 0.5

    def test_from_epsilon(self):
        sketch = BJKSTSketch.from_epsilon(0.2, seed=0)
        assert sketch.capacity >= 36 / 0.04 * 0 + 16  # sanity: capacity grows


class TestHyperLogLogSpecifics:
    def test_precision_bounds(self):
        with pytest.raises(InvalidParameterError):
            HyperLogLog(precision=3)
        with pytest.raises(InvalidParameterError):
            HyperLogLog(precision=19)

    def test_from_epsilon_sets_precision(self):
        fine = HyperLogLog.from_epsilon(0.01)
        coarse = HyperLogLog.from_epsilon(0.2)
        assert fine.precision > coarse.precision

    def test_small_range_correction_used_for_tiny_cardinalities(self):
        sketch = HyperLogLog(precision=10, seed=0)
        for value in range(30):
            sketch.update(value)
        assert abs(sketch.estimate() - 30) <= 3


class TestLinearCountingSpecifics:
    def test_saturation_raises(self):
        sketch = LinearCounting(bitmap_bits=8, seed=0)
        for value in range(500):
            sketch.update(value)
        with pytest.raises(EstimationError):
            sketch.estimate()

    def test_load_factor_tracks_fill(self):
        sketch = LinearCounting(bitmap_bits=1024, seed=0)
        assert sketch.load_factor == 0.0
        for value in range(100):
            sketch.update(value)
        assert 0.05 < sketch.load_factor < 0.15
