"""Tests for repro.engine.resilience: policies, supervision, fault injection.

The load-bearing property is **bit-identical recovery**: a shard worker
killed, hung or cut off mid-ingest is respawned/reconnected/reassigned,
reloaded from its basis snapshot and replayed its unacked blocks, after
which the merged summary equals (``to_bytes()``) a clean serial ingest of
the same stream.  The degradation half pins the exhaustion contract:
once the :class:`RecoveryPolicy` is spent with ``on_exhausted="degrade"``
the coordinator reports lost shards and row coverage instead of raising,
and every query answer carries the coverage annotation.

All faults are injected through the seeded, declarative
:class:`FaultPlan` harness — nothing here depends on racing a signal
against the ingest loop.
"""

from __future__ import annotations

import contextlib
import json

import numpy as np
import pytest

from repro import (
    ColumnQuery,
    Coordinator,
    Dataset,
    ExactBaseline,
    InvalidParameterError,
    QueryService,
    RowStream,
    UniformSampleEstimator,
)
from repro import telemetry
from repro.engine.resilience import (
    CLIENT_FEATURES,
    DeadlinePolicy,
    DegradedAnswer,
    FaultPlan,
    FaultRule,
    RecoveryPolicy,
    ResilienceConfig,
    RetryPolicy,
    ShardSupervisor,
    WorkerSupervisor,
    active_fault_plan,
    installed_fault_plan,
)
from repro.engine.resilience.faults import FAULT_PLAN_ENV
from repro.engine.transport import SocketShardClient, spawn_local_servers
from repro.errors import TransportError

D = 5
DATA = Dataset.random(n_rows=400, n_columns=D, seed=21)
MORE = Dataset.random(n_rows=200, n_columns=D, seed=22)


def _exact_factory() -> ExactBaseline:
    return ExactBaseline(n_columns=D)


def _usample_factory() -> UniformSampleEstimator:
    return UniformSampleEstimator(n_columns=D, sample_size=48, seed=9)


def _serial_bytes(factory, streams, batch_size: int = 64) -> bytes:
    coordinator = Coordinator(
        factory, n_shards=2, backend="serial", batch_size=batch_size
    )
    for stream in streams:
        coordinator.ingest(stream)
    return coordinator.merged_estimator.to_bytes()


def _shutdown_servers(addresses, processes) -> None:
    for address in addresses:
        with contextlib.suppress(TransportError, ConnectionError, OSError):
            SocketShardClient(address).shutdown_server()
    for process in processes:
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - teardown hardening
            process.terminate()


# -- policy parsing and validation ----------------------------------------------


def test_retry_policy_delay_schedule_is_seeded_and_bounded() -> None:
    policy = RetryPolicy(max_attempts=5, base_delay=0.5, max_delay=1.0, seed=7)
    first = list(policy.delays())
    second = list(policy.delays())
    assert first == second  # pure function of the policy fields
    assert len(first) == policy.max_attempts - 1
    assert all(0 < delay <= policy.max_delay for delay in first)
    reseeded = RetryPolicy(max_attempts=5, base_delay=0.5, max_delay=1.0, seed=8)
    assert list(reseeded.delays()) != first
    unjittered = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
    assert list(unjittered.delays()) == [0.1, 0.2, 0.4]


def test_retry_policy_parse_and_validate() -> None:
    policy = RetryPolicy.parse("5,base=0.1,jitter=0,seed=7")
    assert policy.max_attempts == 5
    assert policy.base_delay == 0.1
    assert policy.jitter == 0.0
    assert policy.seed == 7
    with pytest.raises(InvalidParameterError, match="max_attempts"):
        RetryPolicy.parse("0")
    with pytest.raises(InvalidParameterError, match="unknown key"):
        RetryPolicy.parse("attempts=3,warp=9")
    with pytest.raises(InvalidParameterError, match="expects int"):
        RetryPolicy.parse("attempts=three")


def test_deadline_policy_parse_bare_number_applies_to_all() -> None:
    deadlines = DeadlinePolicy.parse("30")
    assert (deadlines.connect, deadlines.ingest, deadlines.snapshot) == (
        30.0, 30.0, 30.0,
    )
    split = DeadlinePolicy.parse("connect=5,ingest=60,snapshot=120")
    assert (split.connect, split.ingest, split.snapshot) == (5.0, 60.0, 120.0)
    with pytest.raises(InvalidParameterError, match="must be > 0"):
        DeadlinePolicy.parse("0")


def test_recovery_policy_parse_and_validate() -> None:
    policy = RecoveryPolicy.parse("reassign,max=3,on-exhausted=degrade")
    assert policy.mode == "reassign"
    assert policy.max_recoveries == 3
    assert policy.on_exhausted == "degrade"
    assert not policy.fail_fast
    assert RecoveryPolicy.parse("fail-fast").fail_fast
    with pytest.raises(InvalidParameterError, match="unknown recovery mode"):
        RecoveryPolicy.parse("teleport")
    with pytest.raises(InvalidParameterError, match="on_exhausted"):
        RecoveryPolicy.parse("respawn,on_exhausted=shrug")


def test_resilience_config_round_trip_tolerates_unknown_keys() -> None:
    config = ResilienceConfig().with_cli_overrides(
        retry="4,seed=3", rpc_timeout="45", recovery="reassign,max=1"
    )
    payload = json.loads(json.dumps(config.to_dict()))
    assert ResilienceConfig.from_dict(payload) == config
    # Manifests written by a newer engine may carry extra fields.
    payload["retry"]["hedging"] = 2
    payload["recovery"]["quorum"] = "fancy"
    assert ResilienceConfig.from_dict(payload) == config


# -- fault plan harness ----------------------------------------------------------


def test_fault_rule_validation() -> None:
    with pytest.raises(InvalidParameterError, match="unknown fault action"):
        FaultRule(action="meteor").validate()
    with pytest.raises(InvalidParameterError, match="after_blocks"):
        FaultRule(action="crash").validate()
    with pytest.raises(InvalidParameterError, match="frame index"):
        FaultRule(action="corrupt").validate()
    with pytest.raises(InvalidParameterError, match="until_attempt"):
        FaultRule(action="refuse_connect").validate()


def test_fault_plan_env_round_trip(monkeypatch) -> None:
    plan = FaultPlan(
        [FaultRule(action="crash", shard=1, after_blocks=2)], seed=11
    )
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan.to_dict()))
    resolved = active_fault_plan()
    assert resolved is not None
    assert resolved.seed == 11
    assert resolved.rules == plan.rules
    # An in-process installation takes precedence over the environment.
    override = FaultPlan([FaultRule(action="drop", frame=0)])
    with installed_fault_plan(override):
        assert active_fault_plan() is override
    assert active_fault_plan() is not override


def test_fault_plan_frame_mangling_and_once_latch(tmp_path) -> None:
    frame = bytes(range(64))
    plan = FaultPlan([
        FaultRule(action="drop", shard=0, frame=1),
        FaultRule(action="corrupt", shard=1, frame=0),
        FaultRule(action="truncate", shard=2, frame=0),
    ])
    assert plan.mangle_frame(0, 0, frame) == frame  # frame index mismatch
    assert plan.mangle_frame(0, 1, frame) is None   # drop
    assert plan.mangle_frame(0, 1, frame) == frame  # once-latched
    corrupted = plan.mangle_frame(1, 0, frame)
    assert len(corrupted) == len(frame)
    assert corrupted[:4] == frame[:4]       # u32 length prefix intact
    assert corrupted[4:12] != frame[4:12]   # header JSON broken
    assert len(plan.mangle_frame(2, 0, frame)) == len(frame) // 2
    # state_dir latches survive a new plan instance (a respawned process).
    persisted = dict(plan.to_dict(), state_dir=str(tmp_path))
    first, second = FaultPlan.from_dict(persisted), FaultPlan.from_dict(persisted)
    assert first.mangle_frame(0, 1, frame) is None
    assert second.mangle_frame(0, 1, frame) == frame


def test_fault_plan_connect_refusal_is_attempt_scoped() -> None:
    plan = FaultPlan([
        FaultRule(action="refuse_connect", shard=0, until_attempt=3)
    ])
    assert plan.refuses_connect(0, 1)
    assert plan.refuses_connect(0, 2)
    assert not plan.refuses_connect(0, 3)
    assert not plan.refuses_connect(1, 1)  # other shards unaffected


# -- supervisor bookkeeping ------------------------------------------------------


def _block(n_rows: int) -> np.ndarray:
    return np.ones((n_rows, D), dtype=np.int64)


def test_shard_supervisor_replay_buffer_and_sync() -> None:
    shard = ShardSupervisor(0, b"pristine", ResilienceConfig())
    for rows in (10, 20, 30):
        shard.record_send(shard.assign_seq(), _block(rows))
    assert shard.rows_sent == 60
    assert [seq for seq, _ in shard.replay_blocks()] == [0, 1, 2]
    shard.record_sync(1, b"mid-ingest")
    assert shard.basis == b"mid-ingest"
    assert [seq for seq, _ in shard.replay_blocks()] == [2]
    shard.after_collect()
    assert shard.basis == b"pristine"
    assert shard.basis_seq == 2
    assert shard.replay_blocks() == ()
    assert shard.rows_sent == 0
    assert shard.assign_seq() == 3  # sequence numbers stay monotone


def test_shard_supervisor_mark_lost_folds_sent_rows() -> None:
    shard = ShardSupervisor(1, b"p", ResilienceConfig())
    shard.record_send(shard.assign_seq(), _block(25))
    shard.mark_lost()
    assert shard.lost
    assert shard.replay_blocks() == ()
    shard.record_dropped(15)
    assert shard.drain_dropped() == 40  # 25 shipped-then-lost + 15 routed-after
    assert shard.drain_dropped() == 0


def test_fail_fast_disables_tracking_and_recovery() -> None:
    config = ResilienceConfig(recovery=RecoveryPolicy(mode="fail-fast"))
    supervisor = WorkerSupervisor("resident", [b"a", b"b"], config)
    shard = supervisor.shard(0)
    shard.record_send(shard.assign_seq(), _block(10))
    assert shard.buffer == []  # zero-overhead path: nothing buffered
    assert not supervisor.may_recover(0)


def test_worker_supervisor_policy_decisions() -> None:
    config = ResilienceConfig(
        recovery=RecoveryPolicy(max_recoveries=1, on_exhausted="degrade")
    )
    supervisor = WorkerSupervisor("sockets", [b"a", b"b"], config)
    assert supervisor.may_recover(1)
    with supervisor.begin_recovery(1):
        pass
    assert not supervisor.may_recover(1)  # budget of 1 is spent
    assert supervisor.may_recover(0)      # per-shard budgets
    assert supervisor.may_degrade()
    assert supervisor.recoveries == 1
    supervisor.shard(1).mark_lost()
    assert supervisor.lost_shards == (1,)
    supervisor.record_retry("connect")
    assert supervisor.retries == 1


def test_client_features_are_stable() -> None:
    # The wire-negotiated extension set; renaming one silently downgrades
    # every worker to the base protocol.
    assert CLIENT_FEATURES == ("heartbeat", "seq_ack", "sync_snapshot")


# -- degraded answers ------------------------------------------------------------


def test_degraded_answer_contract() -> None:
    answer = DegradedAnswer(value=42.5, coverage=0.5)
    assert float(answer) == 42.5
    assert answer.to_dict() == {"value": 42.5, "coverage": 0.5}
    for coverage in (0.0, 1.0, -0.1, 1.5):
        with pytest.raises(InvalidParameterError, match="strictly between"):
            DegradedAnswer(value=1.0, coverage=coverage)


def test_query_service_rejects_bad_coverage() -> None:
    estimator = _exact_factory()
    with pytest.raises(InvalidParameterError, match="coverage"):
        QueryService(estimator, coverage=0.0)
    with pytest.raises(InvalidParameterError, match="coverage"):
        QueryService(estimator, coverage=1.5)


# -- end-to-end: resident recovery ----------------------------------------------


def test_resident_crash_recovers_bit_identical(tmp_path) -> None:
    """A worker killed mid-stream is respawned + replayed: same bytes."""
    serial = _serial_bytes(_usample_factory, [RowStream(DATA)])
    plan = FaultPlan(
        [FaultRule(action="crash", shard=1, after_blocks=2)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        with Coordinator(
            _usample_factory, n_shards=2, backend="resident", batch_size=64
        ) as coordinator:
            report = coordinator.ingest(RowStream(DATA))
            assert report.recoveries >= 1
            assert report.shards_lost == ()
            assert report.coverage == 1.0
            assert coordinator.merged_estimator.to_bytes() == serial


def test_resident_crash_recovery_spans_repeated_ingests(tmp_path) -> None:
    """The respawned worker keeps serving later segments correctly."""
    streams = [RowStream(DATA), RowStream(MORE)]
    serial = _serial_bytes(_exact_factory, streams)
    plan = FaultPlan(
        [FaultRule(action="crash", shard=0, after_blocks=1)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        with Coordinator(
            _exact_factory, n_shards=2, backend="resident", batch_size=64
        ) as coordinator:
            first = coordinator.ingest(RowStream(DATA))
            second = coordinator.ingest(RowStream(MORE))
            assert first.recoveries + second.recoveries == 1
            assert coordinator.merged_estimator.to_bytes() == serial


def test_resident_exhausted_recovery_degrades_with_coverage(tmp_path) -> None:
    """Spent recovery budget + on_exhausted=degrade → partial answers."""
    plan = FaultPlan(
        [FaultRule(action="crash", shard=1, after_blocks=0)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        with Coordinator(
            _exact_factory,
            n_shards=2,
            backend="resident",
            batch_size=64,
            resilience={
                "recovery": {
                    "max_recoveries": 0, "on_exhausted": "degrade",
                }
            },
        ) as coordinator:
            report = coordinator.ingest(RowStream(DATA))
            assert report.shards_lost == (1,)
            assert report.rows_dropped > 0
            assert report.rows_total + report.rows_dropped == DATA.n_rows
            assert 0.0 < report.coverage < 1.0
            assert coordinator.coverage == pytest.approx(report.coverage)

            service = coordinator.query_service()
            assert service.degraded
            answer = service.estimate_fp(ColumnQuery.of([0, 1], D), 1)
            assert isinstance(answer, DegradedAnswer)
            assert answer.coverage == pytest.approx(report.coverage)
            counter = telemetry.get_registry().counter(
                "repro_resilience_degraded_queries_total"
            )
            assert counter.value(kind="fp") >= 1

            # Coverage survives the checkpoint round trip.
            path = tmp_path / "degraded.ckpt"
            coordinator.save_checkpoint(path)
    restored = QueryService.from_checkpoint(path)
    assert restored.degraded
    assert restored.coverage == pytest.approx(report.coverage)
    assert isinstance(
        restored.estimate_fp(ColumnQuery.of([0, 1], D), 1), DegradedAnswer
    )


def test_coordinator_close_is_idempotent_and_context_managed() -> None:
    with Coordinator(_exact_factory, n_shards=2, backend="resident") as c:
        c.ingest(RowStream(MORE))
        assert c._resident_pool is not None
    assert c._resident_pool is None
    c.close()  # second close is a no-op, not an error
    c.close()


# -- end-to-end: socket recovery -------------------------------------------------


def test_socket_server_crash_reassigns_to_survivor(tmp_path) -> None:
    """A dead server's shard moves to a surviving address: same bytes."""
    serial = _serial_bytes(_usample_factory, [RowStream(DATA)])
    plan = FaultPlan(
        [FaultRule(action="crash", shard=1, after_blocks=2)],
        state_dir=str(tmp_path),
    )
    with installed_fault_plan(plan):
        # Servers are forked under the installed plan and inherit it.
        addresses, processes = spawn_local_servers(2)
        try:
            with Coordinator(
                _usample_factory,
                n_shards=2,
                backend="sockets",
                worker_addresses=addresses,
                batch_size=64,
                resilience={
                    "retry": {"max_attempts": 2, "base_delay": 0.01},
                    "recovery": {"mode": "reassign"},
                },
            ) as coordinator:
                report = coordinator.ingest(RowStream(DATA))
                assert report.recoveries >= 1
                assert report.shards_lost == ()
                assert coordinator.merged_estimator.to_bytes() == serial
        finally:
            _shutdown_servers(addresses, processes)


def test_socket_connect_refusal_is_retried_and_counted() -> None:
    plan = FaultPlan(
        [FaultRule(action="refuse_connect", shard=0, until_attempt=2)]
    )
    serial = _serial_bytes(_exact_factory, [RowStream(MORE)])
    addresses, processes = spawn_local_servers(2)
    try:
        with installed_fault_plan(plan):
            with Coordinator(
                _exact_factory,
                n_shards=2,
                backend="sockets",
                worker_addresses=addresses,
                batch_size=64,
                resilience={"retry": {"max_attempts": 3, "base_delay": 0.01}},
            ) as coordinator:
                report = coordinator.ingest(RowStream(MORE))
                assert report.retries >= 1
                assert coordinator.merged_estimator.to_bytes() == serial
    finally:
        _shutdown_servers(addresses, processes)


def test_socket_exhausted_connect_names_address() -> None:
    config = ResilienceConfig().with_cli_overrides(
        retry="2,base=0.01,jitter=0", rpc_timeout="connect=0.2"
    )
    with pytest.raises(TransportError, match=r"127\.0\.0\.1:9.*2 attempt"):
        SocketShardClient("127.0.0.1:9", resilience=config, shard_index=0)
