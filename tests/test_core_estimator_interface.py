"""Tests for the estimator base interface, registry and capability probing."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.core.estimator import EstimatorRegistry, ProjectedFrequencyEstimator
from repro.core.exhaustive import ExactBaseline
from repro.core.uniform_sample import UniformSampleEstimator
from repro.errors import EstimationError


class _CountOnlyEstimator(ProjectedFrequencyEstimator):
    """Minimal estimator that only tracks the row count (supports F1 only)."""

    def _observe(self, row):
        pass

    def estimate_fp(self, query: ColumnQuery, p: float) -> float:
        if p != 1:
            raise EstimationError("only F1 is supported")
        return float(self.rows_observed)

    def size_in_bits(self) -> int:
        return 64


class TestEstimatorBase:
    def test_observe_accepts_datasets_and_iterables(self):
        estimator = _CountOnlyEstimator(n_columns=3)
        estimator.observe(Dataset.random(10, 3, seed=0))
        estimator.observe([(0, 1, 0), (1, 1, 1)])
        assert estimator.rows_observed == 12

    def test_observe_returns_self_for_chaining(self):
        estimator = _CountOnlyEstimator(n_columns=2)
        assert estimator.observe([(0, 1)]) is estimator

    def test_row_width_is_validated(self):
        estimator = _CountOnlyEstimator(n_columns=3)
        with pytest.raises(EstimationError):
            estimator.observe_row((0, 1))

    def test_default_query_methods_raise(self):
        estimator = _CountOnlyEstimator(n_columns=2)
        query = ColumnQuery.of([0], 2)
        with pytest.raises(EstimationError):
            estimator.estimate_frequency(query, (0,))
        with pytest.raises(EstimationError):
            estimator.heavy_hitters(query, phi=0.1)

    def test_supports_reflects_overrides(self):
        count_only = _CountOnlyEstimator(n_columns=2)
        assert count_only.supports("estimate_fp")
        assert not count_only.supports("heavy_hitters")
        assert not count_only.supports("estimate_frequency")
        assert not count_only.supports("not_a_method")

        usample = UniformSampleEstimator(n_columns=4, sample_size=8)
        assert usample.supports("estimate_frequency")
        assert usample.supports("heavy_hitters")

        exact = ExactBaseline(n_columns=4)
        assert exact.supports("estimate_fp")
        assert exact.supports("estimate_frequency")
        assert exact.supports("heavy_hitters")


class TestEstimatorRegistry:
    def test_register_create_and_names(self):
        registry = EstimatorRegistry()
        registry.register("exact", ExactBaseline)
        registry.register("usample", UniformSampleEstimator)
        assert registry.names() == ["exact", "usample"]

        exact = registry.create("exact", n_columns=5)
        assert isinstance(exact, ExactBaseline)
        usample = registry.create("usample", n_columns=5, sample_size=16)
        assert isinstance(usample, UniformSampleEstimator)
        assert usample.sample_size == 16

    def test_unknown_name_raises_with_known_names_listed(self):
        registry = EstimatorRegistry()
        registry.register("exact", ExactBaseline)
        with pytest.raises(EstimationError) as excinfo:
            registry.create("missing", n_columns=3)
        assert "exact" in str(excinfo.value)
