"""Tests for word utilities: supports, weights, projections and the index map."""

from __future__ import annotations

import pytest

from repro.coding.words import (
    all_words,
    hamming_distance,
    index_to_word,
    intersection_size,
    ones,
    project_word,
    support,
    validate_word,
    weight,
    word_from_support,
    word_to_index,
    zeros,
)
from repro.errors import AlphabetError, DimensionError, InvalidParameterError


class TestValidateWord:
    def test_returns_canonical_tuple(self):
        assert validate_word([1, 0, 2], alphabet_size=3) == (1, 0, 2)

    def test_rejects_out_of_alphabet_symbol(self):
        with pytest.raises(AlphabetError):
            validate_word([0, 3], alphabet_size=3)

    def test_rejects_negative_symbol(self):
        with pytest.raises(AlphabetError):
            validate_word([0, -1], alphabet_size=2)

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(InvalidParameterError):
            validate_word([0, 1], alphabet_size=1)


class TestSupportAndWeight:
    def test_support_of_mixed_word(self):
        assert support((0, 2, 0, 1)) == frozenset({1, 3})

    def test_support_of_zero_word_is_empty(self):
        assert support(zeros(5)) == frozenset()

    def test_weight_counts_nonzeros(self):
        assert weight((0, 2, 0, 1)) == 2
        assert weight(ones(6)) == 6
        assert weight(zeros(4)) == 0

    def test_intersection_size_matches_paper_definition(self):
        # |x ∩ y| counts coordinates where both are non-zero.
        assert intersection_size((1, 1, 0, 0), (0, 1, 1, 0)) == 1
        assert intersection_size((1, 1, 1, 0), (1, 1, 0, 1)) == 2

    def test_intersection_size_rejects_length_mismatch(self):
        with pytest.raises(DimensionError):
            intersection_size((1, 0), (1, 0, 1))

    def test_hamming_distance(self):
        assert hamming_distance((0, 1, 1), (1, 1, 0)) == 2
        assert hamming_distance((0, 1, 1), (0, 1, 1)) == 0


class TestProjection:
    def test_projection_keeps_sorted_column_order(self):
        assert project_word((5, 6, 7, 8), [2, 0]) == (5, 7)

    def test_projection_deduplicates_columns(self):
        assert project_word((5, 6, 7), [1, 1, 2]) == (6, 7)

    def test_projection_rejects_out_of_range_column(self):
        with pytest.raises(DimensionError):
            project_word((1, 0), [2])

    def test_paper_running_example(self):
        # Section 2 example: A is 5x3 binary, C = {columns 0, 1} (1-indexed
        # {1,2} in the paper); the projected rows give f = (1, 1, 0, 3).
        rows = [(1, 1, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1), (1, 1, 0)]
        projected = [project_word(row, [0, 1]) for row in rows]
        counts = {}
        for pattern in projected:
            counts[pattern] = counts.get(pattern, 0) + 1
        assert counts == {(1, 1): 3, (0, 1): 1, (0, 0): 1}


class TestIndexFunction:
    def test_roundtrip_binary(self):
        for index in range(16):
            word = index_to_word(index, length=4, alphabet_size=2)
            assert word_to_index(word, alphabet_size=2) == index

    def test_roundtrip_qary(self):
        for index in range(27):
            word = index_to_word(index, length=3, alphabet_size=3)
            assert word_to_index(word, alphabet_size=3) == index

    def test_canonical_mapping_matches_remark_1(self):
        # e(00)=0, e(01)=1, e(10)=2, e(11)=3.
        assert word_to_index((0, 0), 2) == 0
        assert word_to_index((0, 1), 2) == 1
        assert word_to_index((1, 0), 2) == 2
        assert word_to_index((1, 1), 2) == 3

    def test_index_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            index_to_word(8, length=3, alphabet_size=2)

    def test_all_words_enumerates_full_domain(self):
        words = list(all_words(3, 2))
        assert len(words) == 8
        assert len(set(words)) == 8
        assert words[0] == (0, 0, 0)
        assert words[-1] == (1, 1, 1)


class TestConstructors:
    def test_word_from_support(self):
        assert word_from_support([0, 3], 5) == (1, 0, 0, 1, 0)

    def test_word_from_support_rejects_bad_position(self):
        with pytest.raises(DimensionError):
            word_from_support([5], 5)

    def test_zeros_and_ones(self):
        assert zeros(3) == (0, 0, 0)
        assert ones(3) == (1, 1, 1)
        with pytest.raises(InvalidParameterError):
            zeros(-1)
