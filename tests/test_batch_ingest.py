"""Property tests for the vectorized batch-ingest pipeline.

The contract that makes ``observe_rows`` a pure fast path: for the same
seed, feeding a stream row by row and block by block — under *any* block
split — must leave an estimator in an equivalent state.  For the sampling
summaries the equivalence is bit-exact (the block kernels consume the RNG at
the same bit-stream positions as the per-row path), so these tests compare
raw sampler state, not just query answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AlphaNetEstimator,
    ColumnQuery,
    Coordinator,
    Dataset,
    ExactBaseline,
    RowStream,
    SketchPlan,
    UniformSampleEstimator,
)
from repro.errors import EstimationError, InvalidParameterError
from repro.sketches.hashing import stable_hash64, stable_hash64_rows
from repro.sketches.reservoir import (
    BernoulliSampler,
    ReservoirSampler,
    WithReplacementSampler,
)
from repro.streaming.stream import shard_assignment, shard_assignment_block

D = 8
DATA = Dataset.random(n_rows=700, n_columns=D, alphabet_size=3, seed=21)
STREAM = RowStream(DATA)
QUERY = ColumnQuery.of([0, 2, 5], D)


def _blocks(array: np.ndarray, splits: list[int]) -> list[np.ndarray]:
    """Cut ``array`` into blocks at the given (sorted) row offsets."""
    bounds = [0] + sorted(set(s for s in splits if 0 < s < len(array))) + [len(array)]
    return [array[a:b] for a, b in zip(bounds, bounds[1:])]


# -- sampler kernels: bit-identical to the per-item path --------------------------


@settings(max_examples=20, deadline=None)
@given(
    n_items=st.integers(min_value=0, max_value=120),
    capacity=st.integers(min_value=1, max_value=20),
    splits=st.lists(st.integers(min_value=1, max_value=119), max_size=5),
    seed=st.integers(min_value=0, max_value=50),
)
def test_reservoir_block_kernel_is_bit_identical(n_items, capacity, splits, seed):
    rows = np.arange(n_items * 3, dtype=np.int64).reshape(n_items, 3)
    row_fed = ReservoirSampler(capacity=capacity, seed=seed)
    for row in rows:
        row_fed.update(tuple(int(v) for v in row))
    block_fed = ReservoirSampler(capacity=capacity, seed=seed)
    for block in _blocks(rows, splits):
        block_fed.update_block(block)
    assert block_fed.sample() == row_fed.sample()
    assert block_fed.items_processed == row_fed.items_processed


@settings(max_examples=20, deadline=None)
@given(
    n_items=st.integers(min_value=0, max_value=80),
    draws=st.integers(min_value=1, max_value=12),
    splits=st.lists(st.integers(min_value=1, max_value=79), max_size=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_with_replacement_block_kernel_is_bit_identical(n_items, draws, splits, seed):
    rows = np.arange(n_items * 2, dtype=np.int64).reshape(n_items, 2)
    row_fed = WithReplacementSampler(draws=draws, seed=seed)
    for row in rows:
        row_fed.update(tuple(int(v) for v in row))
    block_fed = WithReplacementSampler(draws=draws, seed=seed)
    for block in _blocks(rows, splits):
        block_fed.update_block(block)
    assert block_fed.sample() == row_fed.sample()
    assert block_fed.items_processed == row_fed.items_processed


def test_with_replacement_block_kernel_chunks_large_blocks():
    """A block bigger than the kernel's element budget is processed in
    chunks without breaking RNG-stream equivalence."""
    draws = 4
    rows = np.arange(60 * 2, dtype=np.int64).reshape(60, 2)
    row_fed = WithReplacementSampler(draws=draws, seed=9)
    for row in rows:
        row_fed.update(tuple(int(v) for v in row))
    block_fed = WithReplacementSampler(draws=draws, seed=9)
    block_fed._BLOCK_ELEMENT_BUDGET = 7 * draws  # force several chunks
    block_fed.update_block(rows)
    assert block_fed.sample() == row_fed.sample()


@settings(max_examples=20, deadline=None)
@given(
    n_items=st.integers(min_value=0, max_value=120),
    rate=st.floats(min_value=0.05, max_value=1.0),
    splits=st.lists(st.integers(min_value=1, max_value=119), max_size=5),
    seed=st.integers(min_value=0, max_value=50),
)
def test_bernoulli_block_kernel_is_bit_identical(n_items, rate, splits, seed):
    rows = np.arange(n_items * 2, dtype=np.int64).reshape(n_items, 2)
    row_fed = BernoulliSampler(rate=rate, seed=seed)
    for row in rows:
        row_fed.update(tuple(int(v) for v in row))
    block_fed = BernoulliSampler(rate=rate, seed=seed)
    for block in _blocks(rows, splits):
        block_fed.update_block(block)
    assert block_fed.sample() == row_fed.sample()
    assert block_fed.items_processed == row_fed.items_processed


# -- estimator-level equivalence --------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(splits=st.lists(st.integers(min_value=1, max_value=699), max_size=6))
def test_exact_baseline_batch_equals_per_row(splits):
    per_row = ExactBaseline(n_columns=D, alphabet_size=3).observe(STREAM)
    batch = ExactBaseline(n_columns=D, alphabet_size=3)
    for block in _blocks(DATA.to_array(), splits):
        batch.observe_rows(block)
    assert batch.rows_observed == per_row.rows_observed
    for p in (0, 1, 2):
        assert batch.estimate_fp(QUERY, p) == per_row.estimate_fp(QUERY, p)
    assert batch.heavy_hitters(QUERY, phi=0.05) == per_row.heavy_hitters(
        QUERY, phi=0.05
    )
    pattern = (0, 1, 2)
    assert batch.estimate_frequency(QUERY, pattern) == per_row.estimate_frequency(
        QUERY, pattern
    )


def test_exact_baseline_interleaves_rows_and_blocks_in_order():
    rows = DATA.to_array()
    mixed = ExactBaseline(n_columns=D, alphabet_size=3)
    mixed.observe_row(tuple(int(v) for v in rows[0]))
    mixed.observe_rows(rows[1:400])
    mixed.observe_row(tuple(int(v) for v in rows[400]))
    mixed.observe_rows(rows[401:])
    assert mixed.to_dataset().to_array().tolist() == rows.tolist()


@pytest.mark.parametrize("with_replacement", [False, True])
def test_uniform_sample_batch_has_identical_sample(with_replacement):
    factory = lambda: UniformSampleEstimator(  # noqa: E731
        n_columns=D,
        sample_size=48,
        alphabet_size=3,
        with_replacement=with_replacement,
        seed=11,
    )
    per_row = factory().observe(STREAM)
    batch = factory()
    for _, block in STREAM.iter_batches(97):
        batch.observe_rows(block)
    assert batch._sampler.sample() == per_row._sampler.sample()
    assert batch.rows_observed == per_row.rows_observed
    pattern = (0, 1, 2)
    assert batch.estimate_frequency(QUERY, pattern) == per_row.estimate_frequency(
        QUERY, pattern
    )


def test_alpha_net_batch_equals_per_row():
    factory = lambda: AlphaNetEstimator(  # noqa: E731
        n_columns=D,
        alpha=0.3,
        plan=SketchPlan.default_f0(epsilon=0.3, seed=5),
        alphabet_size=3,
    )
    per_row = factory().observe(STREAM)
    batch = factory()
    for _, block in STREAM.iter_batches(128):
        batch.observe_rows(block)
    for columns in ([0, 2, 5], [1, 3], [0, 1, 2, 3, 4]):
        query = ColumnQuery.of(columns, D)
        assert batch.estimate_fp(query, 0) == per_row.estimate_fp(query, 0)


# -- observe_rows validation and version counter ----------------------------------


def test_observe_rows_validates_block_shape_and_dtype():
    estimator = ExactBaseline(n_columns=D)
    with pytest.raises(EstimationError):
        estimator.observe_rows(np.zeros(D, dtype=np.int64))  # 1-D
    with pytest.raises(EstimationError):
        estimator.observe_rows(np.zeros((3, D + 1), dtype=np.int64))  # width
    with pytest.raises(EstimationError):
        estimator.observe_rows(np.zeros((3, D), dtype=np.float64))  # dtype
    estimator.observe_rows(np.zeros((0, D), dtype=np.int64))  # empty is a no-op
    assert estimator.rows_observed == 0


def test_observe_dispatches_ndarray_to_observe_rows():
    estimator = ExactBaseline(n_columns=D, alphabet_size=3)
    estimator.observe(DATA.to_array())
    assert estimator.rows_observed == DATA.n_rows


def test_version_counter_increases_on_every_mutation():
    estimator = ExactBaseline(n_columns=D, alphabet_size=3)
    assert estimator.version == 0
    estimator.observe_row((0,) * D)
    after_row = estimator.version
    assert after_row > 0
    estimator.observe_rows(np.zeros((5, D), dtype=np.int64))
    after_block = estimator.version
    assert after_block > after_row
    other = ExactBaseline(n_columns=D, alphabet_size=3)
    other.observe_row((1,) * D)
    estimator.merge(other)
    assert estimator.version > after_block


# -- block-wise shard assignment --------------------------------------------------


@pytest.mark.parametrize("policy", ["round_robin", "hash"])
def test_shard_assignment_block_matches_per_row(policy):
    block = DATA.to_array()[:200]
    start = 137
    vectorized = shard_assignment_block(start, block, 5, policy, hash_seed=3)
    reference = [
        shard_assignment(start + i, tuple(int(v) for v in row), 5, policy, 3)
        for i, row in enumerate(block)
    ]
    assert vectorized.tolist() == reference


def test_stable_hash64_rows_matches_scalar_hash():
    block = np.array([[0, 1, 2], [2, 1, 0], [-3, 7, 5]], dtype=np.int64)
    hashes = stable_hash64_rows(block, seed=9)
    for value, row in zip(hashes, block):
        assert int(value) == stable_hash64(tuple(int(v) for v in row), 9)


def test_stable_hash64_rows_validates_input():
    with pytest.raises(InvalidParameterError):
        stable_hash64_rows(np.zeros(4, dtype=np.int64))
    with pytest.raises(InvalidParameterError):
        stable_hash64_rows(np.zeros((2, 2), dtype=np.float64))
    assert stable_hash64_rows(np.zeros((0, 4), dtype=np.int64)).shape == (0,)


# -- coordinator batch pipeline ---------------------------------------------------


@pytest.mark.parametrize("policy", ["round_robin", "hash"])
@pytest.mark.parametrize("n_shards", [1, 3])
def test_coordinator_batch_path_equals_row_path(policy, n_shards):
    row_path = Coordinator(
        lambda: ExactBaseline(n_columns=D, alphabet_size=3),
        n_shards=n_shards,
        policy=policy,
        backend="serial",
    )
    row_path.ingest(STREAM)
    block_path = Coordinator(
        lambda: ExactBaseline(n_columns=D, alphabet_size=3),
        n_shards=n_shards,
        policy=policy,
        backend="serial",
        batch_size=96,
    )
    report = block_path.ingest(STREAM)
    assert report.rows_total == DATA.n_rows
    assert report.rows_per_shard == tuple(
        shard.rows_ingested for shard in row_path.shards
    )
    for p in (0, 1, 2):
        assert block_path.merged_estimator.estimate_fp(
            QUERY, p
        ) == row_path.merged_estimator.estimate_fp(QUERY, p)


def test_coordinator_batch_process_backend_matches_serial():
    factory = lambda: AlphaNetEstimator(  # noqa: E731
        n_columns=D,
        alpha=0.3,
        plan=SketchPlan.default_f0(epsilon=0.3, seed=5),
        alphabet_size=3,
    )
    parallel = Coordinator(factory, n_shards=2, backend="processes", batch_size=128)
    serial = Coordinator(factory, n_shards=2, backend="serial", batch_size=128)
    parallel.ingest(STREAM)
    serial.ingest(STREAM)
    assert parallel.merged_estimator.estimate_fp(QUERY, 0) == (
        serial.merged_estimator.estimate_fp(QUERY, 0)
    )


def test_coordinator_batch_sampler_is_bit_identical_to_row_path():
    """Round-robin + serial: each shard sees the same substream in the same
    order under both paths, so a seeded sampler ends up identical."""
    factory = lambda: UniformSampleEstimator(  # noqa: E731
        n_columns=D, sample_size=32, alphabet_size=3, seed=4
    )
    row_path = Coordinator(factory, n_shards=2, backend="serial")
    block_path = Coordinator(factory, n_shards=2, backend="serial", batch_size=64)
    row_path.ingest(STREAM)
    block_path.ingest(STREAM)
    for row_shard, block_shard in zip(row_path.shards, block_path.shards):
        assert (
            row_shard.estimator._sampler.sample()
            == block_shard.estimator._sampler.sample()
        )


def test_coordinator_validates_batch_size():
    with pytest.raises(InvalidParameterError):
        Coordinator(lambda: ExactBaseline(n_columns=D), batch_size=0)
