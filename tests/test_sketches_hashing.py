"""Tests for the hash-function families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.sketches.hashing import (
    MERSENNE_PRIME_61,
    HashFamily,
    MultiplyShiftHash,
    PolynomialHash,
    TabulationHash,
    hash_to_unit_interval,
    pairwise_collision_rate,
    stable_hash64,
    stable_hash64_patterns,
)


class TestStableHash:
    def test_deterministic_for_same_seed(self):
        assert stable_hash64("item", 7) == stable_hash64("item", 7)

    def test_different_seeds_differ(self):
        assert stable_hash64("item", 1) != stable_hash64("item", 2)

    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash64("1") != stable_hash64(1)
        assert stable_hash64((1, 2)) != stable_hash64((2, 1))

    def test_nested_tuples_supported(self):
        assert isinstance(stable_hash64(((1, "a"), (0, 1, 0))), int)

    def test_unit_interval_range(self):
        values = [hash_to_unit_interval(i, seed=3) for i in range(200)]
        assert all(0 <= v < 1 for v in values)
        # Roughly uniform: the mean of 200 uniform draws is near 1/2.
        assert 0.35 < sum(values) / len(values) < 0.65


class TestMultiplyShift:
    def test_output_within_range(self):
        h = MultiplyShiftHash(output_bits=10, seed=1)
        assert all(0 <= h(i) < h.range_size for i in range(500))

    def test_collision_rate_is_universal(self):
        h = MultiplyShiftHash(output_bits=12, seed=5)
        rate = pairwise_collision_rate(h, range(300))
        assert rate <= 3.0 / h.range_size

    def test_rejects_invalid_bits(self):
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(output_bits=0)
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(output_bits=65)


class TestPolynomialHash:
    def test_range_restriction(self):
        h = PolynomialHash(independence=2, range_size=97, seed=2)
        assert all(0 <= h(i) < 97 for i in range(300))

    def test_sign_is_plus_minus_one_and_balanced(self):
        h = PolynomialHash(independence=4, seed=9)
        signs = [h.sign(i) for i in range(1000)]
        assert set(signs) <= {-1, 1}
        assert abs(sum(signs)) < 200  # roughly balanced

    def test_independence_validation(self):
        with pytest.raises(InvalidParameterError):
            PolynomialHash(independence=1)

    def test_deterministic(self):
        a = PolynomialHash(independence=3, range_size=50, seed=4)
        b = PolynomialHash(independence=3, range_size=50, seed=4)
        assert [a(i) for i in range(20)] == [b(i) for i in range(20)]


class TestTabulationHash:
    def test_output_within_range(self):
        h = TabulationHash(output_bits=16, seed=0)
        assert all(0 <= h(i) < h.range_size for i in range(500))

    def test_collision_rate(self):
        h = TabulationHash(output_bits=14, seed=1)
        rate = pairwise_collision_rate(h, range(300))
        assert rate <= 3.0 / h.range_size


class TestHashFamily:
    def test_draws_are_independent_functions(self):
        family = HashFamily(seed=42)
        first = family.polynomial(range_size=1000)
        second = family.polynomial(range_size=1000)
        outputs_first = [first(i) for i in range(50)]
        outputs_second = [second(i) for i in range(50)]
        assert outputs_first != outputs_second

    def test_same_master_seed_reproduces_the_family(self):
        one = HashFamily(seed=3)
        two = HashFamily(seed=3)
        assert [one.polynomial(range_size=64)(i) for i in range(20)] == [
            two.polynomial(range_size=64)(i) for i in range(20)
        ]

    def test_draw_seeds(self):
        family = HashFamily(seed=1)
        seeds = family.draw_seeds(5)
        assert len(seeds) == len(set(seeds)) == 5
        with pytest.raises(InvalidParameterError):
            family.draw_seeds(-1)


# --------------------------------------------------------------------------
# uint64-boundary fuzzing of the block kernels
#
# The scalar ``__call__`` paths first key items through BLAKE2b
# (``stable_hash64``), so boundary *keys* cannot be reached from items.
# These tests inject raw uint64 keys straight into ``evaluate_block`` /
# ``sign_block`` / ``field_value_block`` and compare against unbounded
# python-int reference arithmetic rebuilt from each instance's parameters.
# Any uint64 wraparound, signed-cast, or Mersenne-fold bug in the numpy
# kernels shows up as a mismatch at these keys.
# --------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1

BOUNDARY_KEYS = [
    0,
    1,
    2,
    2**61 - 2,
    2**61 - 1,  # the Mersenne prime itself: folds to 0 in GF(2^61 - 1)
    2**61,
    2**62,
    2**63 - 1,  # int64 max: one past it flips the sign bit
    2**63,
    2**63 + 1,
    2**64 - 2,
    2**64 - 1,
]

HASH_SEEDS = [0, 1, 7, 1234]


def _multiply_shift_reference(h: MultiplyShiftHash, key: int) -> int:
    return ((h._a * key + h._b) & _MASK64) >> (64 - h.output_bits)


def _field_value_reference(h: PolynomialHash, key: int) -> int:
    key %= MERSENNE_PRIME_61
    value = 0
    for coefficient in h._coefficients:
        value = (value * key + coefficient) % MERSENNE_PRIME_61
    return value


def _tabulation_reference(h: TabulationHash, key: int) -> int:
    value = 0
    for byte_index in range(8):
        value ^= int(h._tables[byte_index, (key >> (8 * byte_index)) & 0xFF])
    return value >> (64 - h.output_bits)


def _keys_array(keys) -> np.ndarray:
    return np.array(list(keys), dtype=np.uint64)


class TestBoundaryKeys:
    @pytest.mark.parametrize("seed", HASH_SEEDS)
    @pytest.mark.parametrize("output_bits", [1, 10, 63, 64])
    def test_multiply_shift_block_at_boundaries(self, seed, output_bits):
        h = MultiplyShiftHash(output_bits=output_bits, seed=seed)
        block = h.evaluate_block(_keys_array(BOUNDARY_KEYS))
        expected = [_multiply_shift_reference(h, key) for key in BOUNDARY_KEYS]
        assert block.tolist() == expected

    @pytest.mark.parametrize("seed", HASH_SEEDS)
    @pytest.mark.parametrize("independence", [2, 4])
    def test_polynomial_field_value_block_at_boundaries(self, seed, independence):
        h = PolynomialHash(independence=independence, seed=seed)
        block = h.field_value_block(_keys_array(BOUNDARY_KEYS))
        expected = [_field_value_reference(h, key) for key in BOUNDARY_KEYS]
        assert block.tolist() == expected

    @pytest.mark.parametrize("seed", HASH_SEEDS)
    @pytest.mark.parametrize("range_size", [2, 97, 2**31])
    def test_polynomial_evaluate_block_at_boundaries(self, seed, range_size):
        h = PolynomialHash(independence=3, range_size=range_size, seed=seed)
        block = h.evaluate_block(_keys_array(BOUNDARY_KEYS))
        expected = [
            _field_value_reference(h, key) % range_size for key in BOUNDARY_KEYS
        ]
        assert block.tolist() == expected

    @pytest.mark.parametrize("seed", HASH_SEEDS)
    def test_polynomial_sign_block_at_boundaries(self, seed):
        h = PolynomialHash(independence=4, seed=seed)
        block = h.sign_block(_keys_array(BOUNDARY_KEYS))
        expected = [
            1 if _field_value_reference(h, key) & 1 else -1 for key in BOUNDARY_KEYS
        ]
        assert block.dtype == np.int64
        assert block.tolist() == expected

    def test_mersenne_multiples_fold_to_zero(self):
        # Keys that are multiples of 2^61 - 1 reduce to the zero element,
        # so the polynomial collapses to its constant coefficient.
        h = PolynomialHash(independence=5, seed=3)
        multiples = [0, MERSENNE_PRIME_61, 2 * MERSENNE_PRIME_61, 8 * MERSENNE_PRIME_61]
        block = h.field_value_block(_keys_array(multiples))
        assert block.tolist() == [h._coefficients[-1]] * len(multiples)

    @pytest.mark.parametrize("seed", HASH_SEEDS)
    @pytest.mark.parametrize("output_bits", [1, 16, 64])
    def test_tabulation_block_at_boundaries(self, seed, output_bits):
        h = TabulationHash(output_bits=output_bits, seed=seed)
        block = h.evaluate_block(_keys_array(BOUNDARY_KEYS))
        expected = [_tabulation_reference(h, key) for key in BOUNDARY_KEYS]
        assert block.tolist() == expected

    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_multiply_shift_fuzz(self, keys, seed):
        h = MultiplyShiftHash(output_bits=32, seed=seed)
        block = h.evaluate_block(_keys_array(keys))
        assert block.tolist() == [_multiply_shift_reference(h, key) for key in keys]

    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_polynomial_fuzz(self, keys, seed):
        h = PolynomialHash(independence=3, range_size=101, seed=seed)
        array = _keys_array(keys)
        values = [_field_value_reference(h, key) for key in keys]
        assert h.field_value_block(array).tolist() == values
        assert h.evaluate_block(array).tolist() == [v % 101 for v in values]
        assert h.sign_block(array).tolist() == [1 if v & 1 else -1 for v in values]

    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_tabulation_fuzz(self, keys, seed):
        h = TabulationHash(output_bits=24, seed=seed)
        block = h.evaluate_block(_keys_array(keys))
        assert block.tolist() == [_tabulation_reference(h, key) for key in keys]

    @pytest.mark.parametrize("seed", HASH_SEEDS)
    def test_item_level_block_matches_scalar_calls(self, seed):
        # End to end: packing items into a block, keying it through
        # stable_hash64_patterns, and evaluating the block kernels must
        # reproduce the scalar __call__/sign results item by item.
        rng = np.random.default_rng(seed)
        block = rng.integers(0, 50, size=(64, 3), dtype=np.int64)
        items = [tuple(row) for row in block.tolist()]
        ms = MultiplyShiftHash(output_bits=20, seed=seed)
        poly = PolynomialHash(independence=4, range_size=127, seed=seed + 1)
        tab = TabulationHash(output_bits=20, seed=seed + 2)
        for h in (ms, poly, tab):
            keys = stable_hash64_patterns(block, h.seed)
            assert h.evaluate_block(keys).tolist() == [h(item) for item in items]
        poly_keys = stable_hash64_patterns(block, poly.seed)
        assert poly.sign_block(poly_keys).tolist() == [
            poly.sign(item) for item in items
        ]

    def test_block_kernels_reject_bad_key_arrays(self):
        h = MultiplyShiftHash(output_bits=8, seed=0)
        with pytest.raises(InvalidParameterError, match="1-D"):
            h.evaluate_block(np.zeros((2, 2), dtype=np.uint64))
        with pytest.raises(InvalidParameterError, match="uint64"):
            h.evaluate_block(np.zeros(4, dtype=np.int64))
