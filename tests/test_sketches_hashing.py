"""Tests for the hash-function families."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.sketches.hashing import (
    HashFamily,
    MultiplyShiftHash,
    PolynomialHash,
    TabulationHash,
    hash_to_unit_interval,
    pairwise_collision_rate,
    stable_hash64,
)


class TestStableHash:
    def test_deterministic_for_same_seed(self):
        assert stable_hash64("item", 7) == stable_hash64("item", 7)

    def test_different_seeds_differ(self):
        assert stable_hash64("item", 1) != stable_hash64("item", 2)

    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash64("1") != stable_hash64(1)
        assert stable_hash64((1, 2)) != stable_hash64((2, 1))

    def test_nested_tuples_supported(self):
        assert isinstance(stable_hash64(((1, "a"), (0, 1, 0))), int)

    def test_unit_interval_range(self):
        values = [hash_to_unit_interval(i, seed=3) for i in range(200)]
        assert all(0 <= v < 1 for v in values)
        # Roughly uniform: the mean of 200 uniform draws is near 1/2.
        assert 0.35 < sum(values) / len(values) < 0.65


class TestMultiplyShift:
    def test_output_within_range(self):
        h = MultiplyShiftHash(output_bits=10, seed=1)
        assert all(0 <= h(i) < h.range_size for i in range(500))

    def test_collision_rate_is_universal(self):
        h = MultiplyShiftHash(output_bits=12, seed=5)
        rate = pairwise_collision_rate(h, range(300))
        assert rate <= 3.0 / h.range_size

    def test_rejects_invalid_bits(self):
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(output_bits=0)
        with pytest.raises(InvalidParameterError):
            MultiplyShiftHash(output_bits=65)


class TestPolynomialHash:
    def test_range_restriction(self):
        h = PolynomialHash(independence=2, range_size=97, seed=2)
        assert all(0 <= h(i) < 97 for i in range(300))

    def test_sign_is_plus_minus_one_and_balanced(self):
        h = PolynomialHash(independence=4, seed=9)
        signs = [h.sign(i) for i in range(1000)]
        assert set(signs) <= {-1, 1}
        assert abs(sum(signs)) < 200  # roughly balanced

    def test_independence_validation(self):
        with pytest.raises(InvalidParameterError):
            PolynomialHash(independence=1)

    def test_deterministic(self):
        a = PolynomialHash(independence=3, range_size=50, seed=4)
        b = PolynomialHash(independence=3, range_size=50, seed=4)
        assert [a(i) for i in range(20)] == [b(i) for i in range(20)]


class TestTabulationHash:
    def test_output_within_range(self):
        h = TabulationHash(output_bits=16, seed=0)
        assert all(0 <= h(i) < h.range_size for i in range(500))

    def test_collision_rate(self):
        h = TabulationHash(output_bits=14, seed=1)
        rate = pairwise_collision_rate(h, range(300))
        assert rate <= 3.0 / h.range_size


class TestHashFamily:
    def test_draws_are_independent_functions(self):
        family = HashFamily(seed=42)
        first = family.polynomial(range_size=1000)
        second = family.polynomial(range_size=1000)
        outputs_first = [first(i) for i in range(50)]
        outputs_second = [second(i) for i in range(50)]
        assert outputs_first != outputs_second

    def test_same_master_seed_reproduces_the_family(self):
        one = HashFamily(seed=3)
        two = HashFamily(seed=3)
        assert [one.polynomial(range_size=64)(i) for i in range(20)] == [
            two.polynomial(range_size=64)(i) for i in range(20)
        ]

    def test_draw_seeds(self):
        family = HashFamily(seed=1)
        seeds = family.draw_seeds(5)
        assert len(seeds) == len(set(seeds)) == 5
        with pytest.raises(InvalidParameterError):
            family.draw_seeds(-1)
