"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import binary_entropy, exact_net_size, net_size_bound
from repro.coding.alphabet import AlphabetReduction
from repro.coding.star import star, star_size
from repro.coding.words import (
    index_to_word,
    intersection_size,
    project_word,
    support,
    weight,
    word_to_index,
)
from repro.core.dataset import ColumnQuery, Dataset
from repro.core.frequency import FrequencyVector
from repro.core.rounding import AlphaNet
from repro.sketches.kmv import KMVSketch
from repro.sketches.misra_gries import MisraGries

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

binary_words = st.lists(st.integers(0, 1), min_size=1, max_size=12).map(tuple)
small_alphabets = st.integers(min_value=2, max_value=5)


@st.composite
def datasets(draw):
    """Small random datasets with an accompanying valid column query."""
    n_columns = draw(st.integers(2, 6))
    n_rows = draw(st.integers(1, 40))
    alphabet = draw(st.integers(2, 3))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, alphabet - 1), min_size=n_columns, max_size=n_columns),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    columns = draw(
        st.sets(st.integers(0, n_columns - 1), min_size=1, max_size=n_columns)
    )
    dataset = Dataset(np.array(rows), alphabet_size=alphabet)
    return dataset, ColumnQuery.of(columns, n_columns)


# ---------------------------------------------------------------------------
# Word / coding invariants
# ---------------------------------------------------------------------------


class TestWordProperties:
    @given(binary_words)
    def test_weight_equals_support_size(self, word):
        assert weight(word) == len(support(word))

    @given(binary_words, binary_words)
    def test_intersection_is_symmetric_and_bounded(self, first, second):
        if len(first) != len(second):
            return
        forward = intersection_size(first, second)
        assert forward == intersection_size(second, first)
        assert forward <= min(weight(first), weight(second))

    @given(st.integers(0, 2**12 - 1), st.integers(2, 4))
    def test_index_word_roundtrip(self, index, alphabet):
        length = 6
        index = index % (alphabet**length)
        word = index_to_word(index, length, alphabet)
        assert word_to_index(word, alphabet) == index

    @given(binary_words, small_alphabets)
    def test_star_size_matches_enumeration(self, word, alphabet):
        if weight(word) > 6:  # keep enumeration small
            return
        children = list(star(word, alphabet))
        assert len(children) == star_size(word, alphabet)
        assert len(set(children)) == len(children)
        assert all(support(child) <= support(word) for child in children)

    @given(st.integers(2, 30), st.integers(2, 5))
    def test_alphabet_reduction_roundtrip(self, source, target):
        if target > source:
            return
        reduction = AlphabetReduction(source_size=source, target_size=target)
        for symbol in range(source):
            assert reduction.decode_symbol(reduction.encode_symbol(symbol)) == symbol


# ---------------------------------------------------------------------------
# Frequency-vector invariants
# ---------------------------------------------------------------------------


class TestFrequencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_f1_equals_row_count_for_any_projection(self, data):
        dataset, query = data
        frequencies = FrequencyVector.from_dataset(dataset, query)
        assert frequencies.total_rows() == dataset.n_rows

    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_f0_bounds(self, data):
        dataset, query = data
        frequencies = FrequencyVector.from_dataset(dataset, query)
        f0 = frequencies.distinct_patterns()
        assert 1 <= f0 <= min(dataset.n_rows, frequencies.domain_size)

    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_moment_monotonicity_in_p(self, data):
        # For integer counts, F_p is non-decreasing in p (each f_i >= 1).
        dataset, query = data
        frequencies = FrequencyVector.from_dataset(dataset, query)
        assert frequencies.frequency_moment(0.5) <= frequencies.frequency_moment(1)
        assert frequencies.frequency_moment(1) <= frequencies.frequency_moment(2)

    @settings(max_examples=40, deadline=None)
    @given(datasets())
    def test_projection_onto_subset_never_increases_f0(self, data):
        dataset, query = data
        full = FrequencyVector.from_dataset(
            dataset, ColumnQuery.all_columns(dataset.n_columns)
        )
        projected = FrequencyVector.from_dataset(dataset, query)
        assert projected.distinct_patterns() <= full.distinct_patterns()

    @settings(max_examples=40, deadline=None)
    @given(datasets(), st.floats(0.3, 3.0))
    def test_sampling_distribution_is_a_distribution(self, data, p):
        dataset, query = data
        frequencies = FrequencyVector.from_dataset(dataset, query)
        distribution = frequencies.lp_sampling_distribution(p)
        assert all(probability >= 0 for probability in distribution.values())
        assert sum(distribution.values()) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(datasets(), st.floats(0.05, 0.9))
    def test_heavy_hitters_contain_every_mandatory_pattern(self, data, phi):
        dataset, query = data
        frequencies = FrequencyVector.from_dataset(dataset, query)
        heavy = frequencies.heavy_hitters(phi, p=1.0)
        threshold = phi * frequencies.lp_norm(1)
        for pattern, count in frequencies.counts.items():
            if count >= threshold:
                assert pattern in heavy


# ---------------------------------------------------------------------------
# Net / entropy invariants
# ---------------------------------------------------------------------------


class TestNetProperties:
    @given(st.floats(0.01, 0.99))
    def test_entropy_bounds(self, x):
        value = binary_entropy(x)
        assert 0 <= value <= 1.0 + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(st.integers(4, 16), st.floats(0.05, 0.45))
    def test_net_size_bound_dominates_exact(self, d, alpha):
        assert exact_net_size(d, alpha) <= net_size_bound(d, alpha) * 1.0001

    @settings(max_examples=60, deadline=None)
    @given(st.integers(4, 14), st.floats(0.05, 0.45), st.integers(1, 14))
    def test_rounded_queries_are_net_members_with_bounded_cost(self, d, alpha, size):
        size = min(size, d)
        net = AlphaNet(d=d, alpha=alpha)
        query = ColumnQuery.of(range(size), d)
        rounded = net.round_query(query)
        assert net.contains(rounded)
        if net.low_size >= 1:
            # The Lemma 6.4 rounding-cost bound |C Δ C'| <= alpha*d applies in
            # the non-degenerate regime where the lower band is non-empty.
            assert query.symmetric_difference_size(rounded) <= math.ceil(alpha * d) + 1
        else:
            # Degenerate band (alpha*d too large for this d): rounding must
            # still land in the net, by growing to the upper band.
            assert len(rounded) >= net.high_size


# ---------------------------------------------------------------------------
# Sketch invariants
# ---------------------------------------------------------------------------


class TestSketchProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_kmv_is_exact_below_capacity(self, items):
        sketch = KMVSketch(k=512, seed=0)
        for item in items:
            sketch.update(item)
        assert sketch.estimate() == pytest.approx(len(set(items)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=300),
        st.lists(st.integers(0, 200), min_size=1, max_size=300),
    )
    def test_kmv_merge_commutes(self, left_items, right_items):
        a = KMVSketch(k=64, seed=1)
        b = KMVSketch(k=64, seed=1)
        c = KMVSketch(k=64, seed=1)
        d = KMVSketch(k=64, seed=1)
        for item in left_items:
            a.update(item)
            c.update(item)
        for item in right_items:
            b.update(item)
            d.update(item)
        a.merge(b)
        d.merge(c)
        assert a.estimate() == pytest.approx(d.estimate())

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=400), st.integers(2, 40))
    def test_misra_gries_error_invariant(self, items, k):
        summary = MisraGries(k=k)
        exact: dict[int, int] = {}
        for item in items:
            summary.update(item)
            exact[item] = exact.get(item, 0) + 1
        bound = len(items) / (k + 1)
        for item, count in exact.items():
            estimate = summary.estimate(item)
            assert estimate <= count
            assert count - estimate <= bound + 1e-9
