"""Tests for the synthetic data and query workload generators."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery
from repro.core.frequency import FrequencyVector
from repro.errors import InvalidParameterError
from repro.workloads.bias import demographic_dataset
from repro.workloads.linkability import quasi_identifier_dataset, uniqueness_profile
from repro.workloads.queries import (
    all_queries_of_size,
    drill_down_chain,
    random_queries,
    size_sweep_queries,
)
from repro.workloads.subspace_cluster import (
    hidden_subspace_dataset,
    subspace_concentration,
)
from repro.workloads.synthetic import (
    correlated_columns,
    planted_heavy_hitters,
    uniform_rows,
    zipfian_rows,
)


class TestSyntheticGenerators:
    def test_uniform_rows_shape_and_alphabet(self):
        data = uniform_rows(200, 6, alphabet_size=3, seed=0)
        assert data.shape == (200, 6)
        assert data.to_array().max() <= 2

    def test_zipfian_rows_are_skewed(self):
        data = zipfian_rows(2000, 8, distinct_patterns=50, exponent=1.5, seed=1)
        frequencies = FrequencyVector.from_dataset(
            data, ColumnQuery.all_columns(8)
        )
        top = max(frequencies.counts.values())
        assert top > 0.2 * data.n_rows  # the head pattern dominates
        assert frequencies.distinct_patterns() <= 50

    def test_planted_heavy_hitters_counts_are_respected(self):
        data, planted = planted_heavy_hitters(
            1000, 8, heavy_patterns=2, heavy_fraction=0.5, seed=2
        )
        frequencies = FrequencyVector.from_dataset(data, ColumnQuery.all_columns(8))
        for pattern, count in planted.items():
            assert frequencies.frequency(pattern) >= count

    def test_correlated_columns_concentrate_on_informative_block(self):
        data = correlated_columns(1000, 10, informative_columns=4, noise=0.02, seed=3)
        informative = FrequencyVector.from_dataset(data, ColumnQuery.of(range(4), 10))
        noise = FrequencyVector.from_dataset(data, ColumnQuery.of(range(6, 10), 10))
        assert informative.distinct_patterns() < noise.distinct_patterns()

    def test_generator_validation(self):
        with pytest.raises(InvalidParameterError):
            uniform_rows(0, 5)
        with pytest.raises(InvalidParameterError):
            zipfian_rows(10, 5, exponent=0)
        with pytest.raises(InvalidParameterError):
            planted_heavy_hitters(100, 5, heavy_fraction=1.5)


class TestBiasWorkload:
    def test_planted_group_is_a_projected_heavy_hitter(self):
        data, truth = demographic_dataset(n_rows=3000, bias_strength=0.3, seed=4)
        biased_columns = tuple(truth.overrepresented_group)
        indices = truth.column_indices(biased_columns)
        query = ColumnQuery.of(indices, data.n_columns)
        frequencies = FrequencyVector.from_dataset(data, query)
        pattern = truth.group_pattern(biased_columns)
        assert frequencies.frequency(pattern) >= truth.planted_rows
        assert frequencies.relative_frequency(pattern) >= 0.25

    def test_ground_truth_accessors(self):
        _, truth = demographic_dataset(n_rows=500, seed=5)
        assert 0 < truth.planted_fraction < 1
        with pytest.raises(InvalidParameterError):
            truth.column_indices(("not_a_column",))
        with pytest.raises(InvalidParameterError):
            truth.group_pattern(("age_band",))  # not part of the planted group

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            demographic_dataset(n_rows=5)
        with pytest.raises(InvalidParameterError):
            demographic_dataset(n_rows=100, biased_attributes=("missing",))


class TestLinkabilityWorkload:
    def test_uniqueness_grows_with_more_identifier_columns(self):
        data, schema = quasi_identifier_dataset(n_rows=2000, seed=6)
        few = uniqueness_profile(data, ColumnQuery.of([0, 1], data.n_columns))
        many = uniqueness_profile(
            data, ColumnQuery.of(range(data.n_columns), data.n_columns)
        )
        assert many.distinct_combinations >= few.distinct_combinations
        assert many.uniqueness_rate >= few.uniqueness_rate

    def test_profile_consistency(self):
        data, _ = quasi_identifier_dataset(n_rows=500, seed=7)
        profile = uniqueness_profile(data, ColumnQuery.of([0, 2, 4], data.n_columns))
        assert profile.total_rows == 500
        assert 0 <= profile.unique_rows <= profile.total_rows
        assert profile.mean_group_size >= 1.0

    def test_schema_lookup(self):
        _, schema = quasi_identifier_dataset(n_rows=100, seed=8)
        assert schema.column_index(schema.column_names[0]) == 0
        with pytest.raises(InvalidParameterError):
            schema.column_index("missing")


class TestSubspaceClusterWorkload:
    def test_planted_subspaces_are_more_concentrated_than_noise(self):
        data, planted = hidden_subspace_dataset(
            n_rows=1500, n_columns=12, subspace_size=4, n_subspaces=2, seed=9
        )
        for subspace in planted:
            planted_score = subspace_concentration(
                data, ColumnQuery.of(subspace.columns, 12)
            )
            noise_score = subspace_concentration(data, ColumnQuery.of(range(8, 12), 12))
            assert planted_score > noise_score

    def test_ground_truth_fractions_sum_below_one(self):
        _, planted = hidden_subspace_dataset(
            n_rows=600, n_columns=12, subspace_size=3, n_subspaces=3, seed=10
        )
        assert sum(s.member_fraction for s in planted) < 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            hidden_subspace_dataset(100, 6, subspace_size=4, n_subspaces=2)


class TestQueryWorkloads:
    def test_random_queries_size_and_count(self):
        queries = random_queries(d=12, query_size=4, count=10, seed=11)
        assert len(queries) == 10
        assert all(len(query) == 4 for query in queries)

    def test_size_sweep_covers_requested_sizes(self):
        queries = size_sweep_queries(d=10, sizes=[1, 5, 10], per_size=2, seed=12)
        assert sorted({len(q) for q in queries}) == [1, 5, 10]
        assert len(queries) == 6

    def test_drill_down_chain_is_nested(self):
        chain = drill_down_chain(d=10, start_size=2, steps=4, seed=13)
        assert len(chain) == 5
        for previous, current in zip(chain, chain[1:]):
            assert previous.as_set() < current.as_set()

    def test_all_queries_of_size(self):
        queries = list(all_queries_of_size(6, 2))
        assert len(queries) == 15
        with pytest.raises(InvalidParameterError):
            list(all_queries_of_size(20, 10, limit=10))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_queries(5, 6, 1)
        with pytest.raises(InvalidParameterError):
            drill_down_chain(5, 3, 4)
