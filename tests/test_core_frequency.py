"""Tests for frequency vectors and exact reference solvers."""

from __future__ import annotations

import math

import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.core.frequency import FrequencyVector, exact_fp, exact_heavy_hitters
from repro.errors import InvalidParameterError, QueryError

# The Section 2 running example: A in {0,1}^{5x3}, C = first two columns.
PAPER_ROWS = [(1, 1, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1), (1, 1, 0)]


@pytest.fixture()
def paper_example() -> FrequencyVector:
    dataset = Dataset.from_words(PAPER_ROWS, alphabet_size=2)
    return FrequencyVector.from_dataset(dataset, ColumnQuery.of([0, 1], 3))


class TestPaperExample:
    def test_f0_is_three(self, paper_example):
        assert paper_example.distinct_patterns() == 3
        assert paper_example.frequency_moment(0) == 3.0

    def test_f1_is_five_regardless_of_projection(self, paper_example):
        assert paper_example.total_rows() == 5
        dataset = Dataset.from_words(PAPER_ROWS, alphabet_size=2)
        other = FrequencyVector.from_dataset(dataset, ColumnQuery.of([2], 3))
        assert other.total_rows() == 5

    def test_frequency_vector_entries_match_remark_1(self, paper_example):
        # f = (1, 1, 0, 3) under the canonical index: 00, 01, 10, 11.
        dense = paper_example.to_dense()
        assert list(dense) == [1, 1, 0, 3]

    def test_point_frequencies(self, paper_example):
        assert paper_example.frequency((1, 1)) == 3
        assert paper_example.frequency((1, 0)) == 0


class TestMomentsAndNorms:
    def test_f2_matches_hand_computation(self, paper_example):
        assert paper_example.frequency_moment(2) == 1 + 1 + 9

    def test_lp_norm_consistency(self, paper_example):
        assert paper_example.lp_norm(1) == 5
        assert paper_example.lp_norm(2) == pytest.approx(math.sqrt(11))

    def test_fractional_moments_monotone(self, paper_example):
        # For p < 1, ||f||_p >= ||f||_1 (used by Corollary 5.2).
        assert paper_example.lp_norm(0.5) >= paper_example.lp_norm(1)

    def test_negative_p_rejected(self, paper_example):
        with pytest.raises(InvalidParameterError):
            paper_example.frequency_moment(-1)


class TestHeavyHittersAndSampling:
    def test_heavy_hitters_threshold(self, paper_example):
        heavy = paper_example.heavy_hitters(phi=0.5, p=1.0)
        assert heavy == {(1, 1): 3}

    def test_heavy_hitters_low_threshold_reports_all(self, paper_example):
        heavy = paper_example.heavy_hitters(phi=0.1, p=1.0)
        assert set(heavy) == {(1, 1), (0, 1), (0, 0)}

    def test_heavy_hitters_rejects_bad_phi(self, paper_example):
        with pytest.raises(InvalidParameterError):
            paper_example.heavy_hitters(phi=1.5)

    def test_sampling_distribution_sums_to_one(self, paper_example):
        for p in (0.5, 1.0, 2.0):
            distribution = paper_example.lp_sampling_distribution(p)
            assert sum(distribution.values()) == pytest.approx(1.0)

    def test_sampling_distribution_weights(self, paper_example):
        distribution = paper_example.lp_sampling_distribution(2.0)
        assert distribution[(1, 1)] == pytest.approx(9 / 11)

    def test_relative_frequency(self, paper_example):
        assert paper_example.relative_frequency((1, 1), p=1.0) == pytest.approx(0.6)


class TestConstructionAndValidation:
    def test_from_counts_drops_zero_entries(self):
        vector = FrequencyVector.from_counts(
            {(0, 1): 3, (1, 1): 0}, alphabet_size=2, pattern_length=2
        )
        assert len(vector) == 1

    def test_from_counts_validates_lengths(self):
        with pytest.raises(InvalidParameterError):
            FrequencyVector.from_counts(
                {(0, 1, 1): 1}, alphabet_size=2, pattern_length=2
            )

    def test_from_counts_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            FrequencyVector.from_counts(
                {(0, 1): -1}, alphabet_size=2, pattern_length=2
            )

    def test_dense_guard(self):
        vector = FrequencyVector.from_counts(
            {(0,) * 30: 1}, alphabet_size=2, pattern_length=30
        )
        with pytest.raises(QueryError):
            vector.to_dense(max_domain=1 << 20)

    def test_domain_size(self, paper_example):
        assert paper_example.domain_size == 4


class TestApproximationRatioAndWrappers:
    def test_approximation_ratio_symmetry(self, paper_example):
        truth = paper_example.frequency_moment(0)
        assert paper_example.approximation_ratio(truth * 2, 0) == pytest.approx(2.0)
        assert paper_example.approximation_ratio(truth / 2, 0) == pytest.approx(2.0)
        assert paper_example.approximation_ratio(truth, 0) == pytest.approx(1.0)

    def test_approximation_ratio_degenerate_cases(self, paper_example):
        assert paper_example.approximation_ratio(0.0, 0) == float("inf")

    def test_exact_wrappers(self):
        dataset = Dataset.from_words(PAPER_ROWS, alphabet_size=2)
        assert exact_fp(dataset, [0, 1], 0) == 3.0
        heavy = exact_heavy_hitters(dataset, [0, 1], phi=0.5)
        assert heavy == {(1, 1): 3}

    def test_f0_varies_widely_with_projection(self):
        # Section 3: F0 can be large on diverse columns and 1 on constant ones.
        rows = [(i % 2, (i >> 1) % 2, 0) for i in range(4)]
        dataset = Dataset.from_words(rows, alphabet_size=2)
        diverse = FrequencyVector.from_dataset(dataset, ColumnQuery.of([0, 1], 3))
        constant = FrequencyVector.from_dataset(dataset, ColumnQuery.of([2], 3))
        assert diverse.distinct_patterns() == 4
        assert constant.distinct_patterns() == 1
