"""Tests for codes, the star operator and the alphabet reduction."""

from __future__ import annotations

import math

import pytest

from repro.coding.alphabet import AlphabetReduction
from repro.coding.binary_codes import (
    ConstantWeightCode,
    binomial,
    binomial_lower_bound,
    central_binomial_lower_bound,
    enumerate_constant_weight_words,
    max_pairwise_intersection,
    sample_constant_weight_words,
)
from repro.coding.random_codes import (
    RandomCodeParameters,
    build_low_intersection_code,
    lemma_3_2_code_size,
    lemma_3_2_failure_probability,
)
from repro.coding.star import is_child_word, sample_star, star, star_of_set, star_size
from repro.coding.words import support, weight
from repro.errors import AlphabetError, CodeConstructionError, InvalidParameterError


class TestConstantWeightCode:
    def test_full_enumeration_size_matches_binomial(self):
        code = ConstantWeightCode.full(d=6, k=2)
        assert len(code) == binomial(6, 2) == 15

    def test_every_codeword_has_the_right_weight(self):
        code = ConstantWeightCode.full(d=7, k=3)
        assert all(weight(word) == 3 for word in code)

    def test_pairwise_intersection_is_at_most_k_minus_one(self):
        # The "trivial but crucial property" of Section 3.2.
        code = ConstantWeightCode.full(d=8, k=3)
        assert code.max_intersection() == 2

    def test_sampled_codewords_are_distinct_and_valid(self):
        code = ConstantWeightCode.sampled(d=12, k=4, count=30, seed=1)
        assert len(set(code.words)) == 30
        assert all(weight(word) == 4 for word in code)

    def test_sampling_more_than_the_family_size_fails(self):
        with pytest.raises(InvalidParameterError):
            sample_constant_weight_words(d=4, k=2, count=binomial(4, 2) + 1)

    def test_size_lower_bounds(self):
        assert binomial(10, 3) >= binomial_lower_bound(10, 3)
        assert binomial(12, 6) >= central_binomial_lower_bound(12)
        code = ConstantWeightCode.full(d=10, k=3)
        assert code.full_size >= code.size_lower_bound()

    def test_index_of_roundtrip(self):
        code = ConstantWeightCode.full(d=5, k=2)
        for index, word in enumerate(code.words):
            assert code.index_of(word) == index

    def test_index_of_non_codeword_rejected(self):
        code = ConstantWeightCode.full(d=5, k=2)
        with pytest.raises(InvalidParameterError):
            code.index_of((1, 1, 1, 0, 0))

    def test_enumeration_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_constant_weight_words(4, 5))


class TestRandomCodes:
    def test_parameters_expose_weight_and_intersection(self):
        params = RandomCodeParameters(d=30, epsilon=0.3, gamma=0.05)
        assert params.weight == 9
        assert params.max_intersection == math.floor((0.3**2 + 0.05) * 30)

    def test_lemma_3_2_formulas_are_monotone_in_d(self):
        assert lemma_3_2_code_size(40, 0.1) > lemma_3_2_code_size(20, 0.1)
        assert lemma_3_2_failure_probability(40, 0.1) < lemma_3_2_failure_probability(
            20, 0.1
        )

    def test_built_code_satisfies_the_certified_intersection_bound(self):
        code = build_low_intersection_code(d=30, epsilon=0.3, gamma=0.05, size=12, seed=0)
        assert len(code) == 12
        assert code.observed_max_intersection() <= code.max_intersection
        assert all(weight(word) == code.weight for word in code)

    def test_impossible_request_raises_construction_error(self):
        # Asking for far more codewords than rejection sampling can certify
        # with a very tight intersection bound must fail loudly.
        with pytest.raises(CodeConstructionError):
            build_low_intersection_code(
                d=10, epsilon=0.4, gamma=0.01, size=500, seed=0, max_attempts_per_word=5
            )

    def test_code_membership_and_index(self):
        code = build_low_intersection_code(d=20, epsilon=0.25, gamma=0.05, size=8, seed=3)
        first = code.words[0]
        assert first in code
        assert code.index_of(first) == 0


class TestStarOperator:
    def test_star_size_is_q_to_the_weight(self):
        word = (1, 0, 1, 1, 0)
        assert star_size(word, 3) == 27
        assert len(list(star(word, 3))) == 27

    def test_children_are_supported_inside_the_parent(self):
        word = (0, 1, 0, 1)
        children = list(star(word, 2))
        assert len(children) == 4
        assert all(support(child) <= support(word) for child in children)
        assert all(is_child_word(child, word) for child in children)

    def test_star_of_set_deduplicates_shared_children(self):
        # The all-zeros word is a child of every codeword.
        words = [(1, 1, 0, 0), (0, 0, 1, 1)]
        deduplicated = star_of_set(words, 2, deduplicate=True)
        multiset = star_of_set(words, 2, deduplicate=False)
        assert len(multiset) == 8
        assert len(deduplicated) == 7  # 0000 appears once instead of twice
        assert len(set(deduplicated)) == len(deduplicated)

    def test_sample_star_produces_valid_children(self):
        word = (1, 1, 1, 0, 0, 0)
        samples = sample_star(word, 4, count=50, seed=2)
        assert len(samples) == 50
        assert all(is_child_word(sample, word) for sample in samples)

    def test_is_child_word_rejects_larger_support(self):
        assert not is_child_word((1, 1, 0), (1, 0, 0))
        assert not is_child_word((1, 0), (1, 0, 0))


class TestAlphabetReduction:
    def test_symbol_roundtrip(self):
        reduction = AlphabetReduction(source_size=17, target_size=3)
        for symbol in range(17):
            assert reduction.decode_symbol(reduction.encode_symbol(symbol)) == symbol

    def test_word_roundtrip_and_dimension(self):
        reduction = AlphabetReduction(source_size=16, target_size=2)
        assert reduction.symbol_length == 4
        word = (3, 0, 15, 7)
        encoded = reduction.encode_word(word)
        assert len(encoded) == reduction.expanded_dimension(len(word))
        assert reduction.decode_word(encoded) == word

    def test_encoding_is_injective_on_distinct_words(self):
        reduction = AlphabetReduction(source_size=5, target_size=2)
        words = [(i, j) for i in range(5) for j in range(5)]
        encodings = {reduction.encode_word(word) for word in words}
        assert len(encodings) == len(words)

    def test_expand_columns_maps_to_blocks(self):
        reduction = AlphabetReduction(source_size=9, target_size=3)
        assert reduction.symbol_length == 2
        assert reduction.expand_columns([0, 2]) == (0, 1, 4, 5)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            AlphabetReduction(source_size=4, target_size=8)
        with pytest.raises(AlphabetError):
            AlphabetReduction(source_size=4, target_size=2).encode_symbol(4)

    def test_alpha_matches_corollary_4_4(self):
        reduction = AlphabetReduction(source_size=16, target_size=2)
        assert reduction.alpha() == pytest.approx(16 * math.log2(16))


class TestMaxPairwiseIntersection:
    def test_empty_and_singleton_codes(self):
        assert max_pairwise_intersection([]) == 0
        assert max_pairwise_intersection([(1, 0, 1)]) == 0

    def test_known_value(self):
        words = [(1, 1, 0, 0), (1, 0, 1, 0), (0, 0, 1, 1)]
        assert max_pairwise_intersection(words) == 1
