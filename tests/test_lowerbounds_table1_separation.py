"""Tests for the Table 1 generator and the separation-measurement helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.lowerbounds.f0_instance import build_f0_instance
from repro.lowerbounds.separation import SeparationSummary, measure_separation
from repro.lowerbounds.table1 import format_table1, table1_rows


class TestTable1:
    def test_four_rows_in_paper_order(self):
        rows = table1_rows(d=20, k=4, big_q=20, small_q=2)
        assert [row.label for row in rows] == [
            "Theorem 4.1",
            "Corollary 4.2",
            "Corollary 4.3",
            "Corollary 4.4",
        ]

    def test_theorem_4_1_row_formulas(self):
        rows = table1_rows(d=20, k=4, big_q=20, small_q=2)
        theorem = rows[0]
        assert theorem.instance_rows == pytest.approx((20 / 4) ** 4 * 20**4)
        assert theorem.approximation_factor == pytest.approx(5.0)
        assert theorem.alphabet == 20
        assert theorem.instance_columns == 20

    def test_corollary_4_2_and_4_3(self):
        rows = table1_rows(d=20, k=4, big_q=20, small_q=2)
        corollary_42, corollary_43 = rows[1], rows[2]
        assert corollary_42.approximation_factor == pytest.approx(2.0)  # 2Q/d = 2
        assert corollary_43.approximation_factor == 2.0
        assert corollary_43.alphabet == 20  # Q = d

    def test_corollary_4_4_dimension_blowup(self):
        rows = table1_rows(d=20, k=4, big_q=16, small_q=2)
        corollary_44 = rows[3]
        assert corollary_44.instance_columns == 20 * 4  # log2(16) = 4
        assert corollary_44.alphabet == 2
        # Same approximation factor as Corollary 4.2, per the paper.
        assert corollary_44.approximation_factor == rows[1].approximation_factor

    def test_formatting_contains_every_label(self):
        rendered = format_table1(table1_rows(d=20, k=4, big_q=20, small_q=2))
        for label in ("Theorem 4.1", "Corollary 4.2", "Corollary 4.3", "Corollary 4.4"):
            assert label in rendered

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            table1_rows(d=21, k=4, big_q=21)  # odd d
        with pytest.raises(InvalidParameterError):
            table1_rows(d=20, k=10, big_q=20)  # k >= d/2
        with pytest.raises(InvalidParameterError):
            table1_rows(d=20, k=4, big_q=4)  # Q < d/2


class TestSeparationSummary:
    def test_gap_and_threshold(self):
        summary = SeparationSummary(
            member_values=(100.0, 120.0), non_member_values=(10.0, 20.0)
        )
        assert summary.gap == pytest.approx(5.0)
        assert summary.separable()
        assert 20.0 < summary.best_threshold() < 100.0

    def test_inseparable_case(self):
        summary = SeparationSummary(
            member_values=(10.0, 30.0), non_member_values=(20.0, 5.0)
        )
        assert not summary.separable()
        assert summary.gap == 0.5

    def test_infinite_gap_when_non_member_is_zero(self):
        summary = SeparationSummary(member_values=(3.0,), non_member_values=(0.0,))
        assert summary.gap == float("inf")
        assert summary.mean_gap == float("inf")

    def test_measure_separation_runs_both_branches(self):
        def statistic(membership: bool, seed: int) -> float:
            instance = build_f0_instance(
                d=8, k=2, alphabet_size=4, membership=membership, code_size=20, seed=seed
            )
            return instance.exact_f0()

        summary = measure_separation(statistic, trials=3)
        assert len(summary.member_values) == 3
        assert len(summary.non_member_values) == 3
        assert summary.separable()
        # Theorem 4.1 predicts a gap of at least Q/k = 2 between the branches.
        assert summary.gap >= 2.0

    def test_measure_separation_validation(self):
        with pytest.raises(InvalidParameterError):
            measure_separation(lambda membership, seed: 1.0, trials=0)
        with pytest.raises(InvalidParameterError):
            measure_separation(lambda membership, seed: 1.0, trials=3, seeds=[1])
