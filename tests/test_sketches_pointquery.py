"""Tests for point-query / heavy-hitter sketches (Count-Min, Count-Sketch, MG, SS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.misra_gries import MisraGries
from repro.sketches.space_saving import SpaceSaving


def _zipf_stream(n_items: int, n_updates: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=float)
    probabilities = ranks**-1.3
    probabilities /= probabilities.sum()
    return [int(v) for v in rng.choice(n_items, size=n_updates, p=probabilities)]


def _exact_counts(stream: list[int]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for item in stream:
        counts[item] = counts.get(item, 0) + 1
    return counts


class TestCountMin:
    def test_never_underestimates(self):
        stream = _zipf_stream(200, 5000, seed=1)
        exact = _exact_counts(stream)
        sketch = CountMinSketch(width=512, depth=5, seed=1)
        sketch.update_many(stream)
        for item, count in exact.items():
            assert sketch.estimate(item) >= count

    def test_additive_error_bound_holds(self):
        stream = _zipf_stream(200, 5000, seed=2)
        exact = _exact_counts(stream)
        sketch = CountMinSketch.from_error(epsilon=0.01, delta=0.01, seed=2)
        sketch.update_many(stream)
        budget = 0.02 * len(stream)  # generous vs the epsilon * F1 bound
        violations = sum(
            1 for item, count in exact.items() if sketch.estimate(item) - count > budget
        )
        assert violations == 0

    def test_merge_adds_counts(self):
        left = CountMinSketch(width=128, depth=4, seed=3)
        right = CountMinSketch(width=128, depth=4, seed=3)
        left.update("x", 10)
        right.update("x", 5)
        left.merge(right)
        assert left.estimate("x") >= 15
        assert left.items_processed == 15

    def test_merge_requires_same_configuration(self):
        with pytest.raises(InvalidParameterError):
            CountMinSketch(width=128, depth=4, seed=1).merge(
                CountMinSketch(width=128, depth=4, seed=2)
            )

    def test_heavy_hitters_from_candidates(self):
        stream = ["a"] * 100 + ["b"] * 50 + ["c"] * 2
        sketch = CountMinSketch(width=256, depth=5, seed=0)
        sketch.update_many(stream)
        report = sketch.heavy_hitters(candidates=["a", "b", "c"], threshold=40)
        assert "a" in report and "b" in report and "c" not in report

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            CountMinSketch(width=1)
        with pytest.raises(InvalidParameterError):
            CountMinSketch.from_error(epsilon=2.0)


class TestCountSketch:
    def test_unbiased_estimates_close_to_truth(self):
        stream = _zipf_stream(100, 8000, seed=4)
        exact = _exact_counts(stream)
        sketch = CountSketch(width=1024, depth=5, seed=4)
        sketch.update_many(stream)
        heavy = sorted(exact, key=exact.get, reverse=True)[:5]
        for item in heavy:
            assert abs(sketch.estimate(item) - exact[item]) <= 0.15 * exact[item] + 20

    def test_l2_estimate_tracks_true_norm(self):
        stream = _zipf_stream(100, 5000, seed=5)
        exact = _exact_counts(stream)
        true_l2 = float(np.sqrt(sum(c * c for c in exact.values())))
        sketch = CountSketch(width=1024, depth=7, seed=5)
        sketch.update_many(stream)
        assert abs(sketch.l2_estimate() - true_l2) / true_l2 < 0.3

    def test_merge(self):
        left = CountSketch(width=64, depth=3, seed=6)
        right = CountSketch(width=64, depth=3, seed=6)
        left.update("x", 20)
        right.update("x", 22)
        left.merge(right)
        assert abs(left.estimate("x") - 42) < 1e-9

    def test_from_error_width_grows_with_accuracy(self):
        assert CountSketch.from_error(0.01).width > CountSketch.from_error(0.1).width


class TestMisraGries:
    def test_guaranteed_recall_of_frequent_items(self):
        stream = ["hh"] * 400 + _zipf_stream(50, 600, seed=7)
        summary = MisraGries(k=20)
        for item in stream:
            summary.update(item)
        # "hh" has frequency 0.4 * F1 >> F1 / (k+1), so it must be tracked.
        assert summary.estimate("hh") > 0
        assert summary.estimate("hh") >= 400 - summary.error_bound()

    def test_underestimates_only(self):
        stream = _zipf_stream(30, 2000, seed=8)
        exact = _exact_counts(stream)
        summary = MisraGries(k=10)
        for item in stream:
            summary.update(item)
        for item, count in exact.items():
            assert summary.estimate(item) <= count

    def test_error_bound(self):
        summary = MisraGries(k=9)
        for item in _zipf_stream(40, 1000, seed=9):
            summary.update(item)
        assert summary.error_bound() == pytest.approx(100.0)

    def test_merge_preserves_heavy_item(self):
        left = MisraGries(k=5)
        right = MisraGries(k=5)
        for _ in range(300):
            left.update("big")
        for item in _zipf_stream(20, 300, seed=10):
            right.update(item)
        left.merge(right)
        assert left.estimate("big") > 0

    def test_heavy_hitters_without_candidates(self):
        summary = MisraGries(k=10)
        for item in ["a"] * 50 + ["b"] * 5:
            summary.update(item)
        report = summary.heavy_hitters(threshold=30)
        assert "a" in report and "b" not in report


class TestSpaceSaving:
    def test_overestimates_only(self):
        stream = _zipf_stream(30, 2000, seed=11)
        exact = _exact_counts(stream)
        summary = SpaceSaving(k=10)
        for item in stream:
            summary.update(item)
        for item, count in exact.items():
            estimate = summary.estimate(item)
            if estimate:
                assert estimate >= count

    def test_guaranteed_frequency_is_a_lower_bound(self):
        stream = _zipf_stream(30, 2000, seed=12)
        exact = _exact_counts(stream)
        summary = SpaceSaving(k=12)
        for item in stream:
            summary.update(item)
        for entry in summary.tracked():
            assert entry.guaranteed_count <= exact.get(entry.item, 0)

    def test_tracked_sorted_by_count(self):
        summary = SpaceSaving(k=5)
        for item in ["a"] * 10 + ["b"] * 5 + ["c"] * 1:
            summary.update(item)
        tracked = summary.tracked()
        assert tracked[0].item == "a"
        counts = [entry.count for entry in tracked]
        assert counts == sorted(counts, reverse=True)

    def test_merge_keeps_top_items(self):
        left = SpaceSaving(k=4)
        right = SpaceSaving(k=4)
        for _ in range(100):
            left.update("big")
        for item in _zipf_stream(20, 200, seed=13):
            right.update(item)
        left.merge(right)
        assert left.estimate("big") >= 100

    def test_error_bound(self):
        summary = SpaceSaving(k=10)
        for item in _zipf_stream(40, 1000, seed=14):
            summary.update(item)
        assert summary.error_bound() == pytest.approx(100.0)
