"""Tests for entropy bounds, analytical bound calculators, Figure 1 curves and rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    abstract_tradeoff,
    f0_lower_bound_space,
    theorem_6_5_approximation,
    theorem_6_5_space,
    usample_size,
)
from repro.analysis.entropy import (
    binary_entropy,
    entropy_counting_bound,
    exact_net_size,
    net_size_bound,
    truncated_binomial_sum,
)
from repro.analysis.reporting import format_quantity, render_series, render_table, sparkline
from repro.analysis.tradeoff import figure1_curves, tradeoff_at_relative_space
from repro.errors import InvalidParameterError


class TestEntropy:
    def test_endpoint_values(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == 1.0

    def test_symmetry(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_counting_bound_dominates_truncated_sum(self):
        for d in (10, 16, 20):
            for fraction in (0.1, 0.25, 0.4):
                limit = math.floor(fraction * d)
                assert truncated_binomial_sum(d, limit) <= entropy_counting_bound(
                    d, fraction
                ) * 1.0001

    def test_net_size_bound_dominates_exact_size(self):
        for d in (8, 12, 16):
            for alpha in (0.1, 0.2, 0.3, 0.4):
                assert exact_net_size(d, alpha) <= net_size_bound(d, alpha)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            binary_entropy(1.5)
        with pytest.raises(InvalidParameterError):
            entropy_counting_bound(10, 0.7)


class TestBoundCalculators:
    def test_f0_lower_bound_space(self):
        assert f0_lower_bound_space(20, 5) == pytest.approx(4.0**5)
        assert f0_lower_bound_space(20, 10) == pytest.approx(2**20 / math.sqrt(40))
        with pytest.raises(InvalidParameterError):
            f0_lower_bound_space(20, 11)

    def test_usample_size_matches_theorem_5_1_shape(self):
        assert usample_size(0.1, 0.05) == pytest.approx(math.log(20) / 0.01)
        assert usample_size(0.05, 0.05) == pytest.approx(4 * usample_size(0.1, 0.05))

    def test_theorem_6_5_space_smaller_than_power_set(self):
        assert theorem_6_5_space(20, 0.25) < 2**20

    def test_theorem_6_5_approximation_cases(self):
        assert theorem_6_5_approximation(20, 0.2, p=0) == pytest.approx(2**4)
        assert theorem_6_5_approximation(20, 0.2, p=1) == 1.0
        assert theorem_6_5_approximation(20, 0.2, p=2) == pytest.approx(2**4)
        assert theorem_6_5_approximation(20, 0.2, p=0.5, beta=2.0) == pytest.approx(
            2 * 2**2
        )

    def test_abstract_tradeoff_exponents(self):
        point = abstract_tradeoff(0.25)
        assert point.approximation_exponent == 0.25
        assert point.space_exponent == pytest.approx(binary_entropy(0.25))
        assert point.space_exponent < 1.0  # strictly better than N = 2^d
        assert "N^" in point.space_of_n and "N^" in point.approximation_factor_of_n


class TestFigure1Curves:
    def test_curve_shape_and_monotonicity(self):
        curve = figure1_curves(d=20, num_points=25)
        spaces = curve.relative_space()
        factors = curve.approximation_factors()
        assert len(curve.points) == 25
        # Relative space decreases as alpha grows; approximation increases.
        assert all(a >= b for a, b in zip(spaces, spaces[1:]))
        assert all(a <= b for a, b in zip(factors, factors[1:]))
        assert all(0 < space <= 1 for space in spaces)

    def test_paper_reading_of_the_right_pane(self):
        # The paper: relative space 2^-2 -> approximation "on the order of
        # 10s"; relative space 2^-8 -> "order of hundreds" (2^12 = 4096
        # summaries instead of ~10^6).
        curve = figure1_curves(d=20, num_points=400)
        at_quarter = tradeoff_at_relative_space(curve, 2.0**-2)
        at_two_fifty_sixth = tradeoff_at_relative_space(curve, 2.0**-8)
        assert 10 <= at_quarter.approximation_factor < 100
        assert 100 <= at_two_fifty_sixth.approximation_factor < 1000
        assert at_two_fifty_sixth.sketch_count == pytest.approx(4096, rel=0.2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            figure1_curves(d=1)
        curve = figure1_curves(d=10)
        with pytest.raises(InvalidParameterError):
            tradeoff_at_relative_space(curve, 0.0)


class TestReporting:
    def test_format_quantity(self):
        assert format_quantity(0) == "0"
        assert format_quantity(42) == "42"
        assert "e" in format_quantity(1.23456e8)
        assert format_quantity(0.25) == "0.25"

    def test_render_table_alignment_and_content(self):
        table = render_table(
            ["name", "value"], [("alpha", 1), ("beta", 2.5)], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in table and "2.5" in table

    def test_render_table_validates_row_width(self):
        with pytest.raises(InvalidParameterError):
            render_table(["a", "b"], [(1,)])

    def test_sparkline_levels(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] != line[-1]
        assert sparkline([]) == ""
        assert sparkline([5, 5]) == "▁▁"

    def test_render_series_subsamples_long_series(self):
        xs = list(range(100))
        ys = [x * x for x in xs]
        rendered = render_series("x", "y", xs, ys, max_points=10)
        assert "trend" in rendered
        assert rendered.count("\n") < 25
        with pytest.raises(InvalidParameterError):
            render_series("x", "y", [1], [1, 2])
