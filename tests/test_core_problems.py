"""Tests for the declarative problem specifications."""

from __future__ import annotations

import pytest

from repro.core.dataset import ColumnQuery, Dataset
from repro.core.frequency import FrequencyVector
from repro.core.problems import (
    FpEstimation,
    FrequencyEstimation,
    HeavyHitters,
    LpSampling,
)
from repro.errors import InvalidParameterError


@pytest.fixture()
def frequencies() -> FrequencyVector:
    rows = [(1, 1)] * 6 + [(0, 1)] * 3 + [(0, 0)] * 1
    dataset = Dataset.from_words(rows, alphabet_size=2)
    return FrequencyVector.from_dataset(dataset, ColumnQuery.of([0, 1], 2))


class TestFpEstimation:
    def test_exact_values(self, frequencies):
        assert FpEstimation(p=0).exact(frequencies) == 3
        assert FpEstimation(p=1).exact(frequencies) == 10
        assert FpEstimation(p=2).exact(frequencies) == 36 + 9 + 1

    def test_rejects_negative_p(self):
        with pytest.raises(InvalidParameterError):
            FpEstimation(p=-0.5)


class TestFrequencyEstimation:
    def test_exact_and_budget(self, frequencies):
        problem = FrequencyEstimation(pattern=(1, 1), p=1.0, phi=0.2)
        assert problem.exact(frequencies) == 6
        assert problem.error_budget(frequencies) == pytest.approx(2.0)

    def test_acceptance_window(self, frequencies):
        problem = FrequencyEstimation(pattern=(0, 1), p=1.0, phi=0.1)
        assert problem.is_acceptable(3.5, frequencies)
        assert not problem.is_acceptable(6.0, frequencies)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            FrequencyEstimation(pattern=(0,), p=0.0)
        with pytest.raises(InvalidParameterError):
            FrequencyEstimation(pattern=(0,), phi=1.0)


class TestHeavyHitters:
    def test_exact_report(self, frequencies):
        problem = HeavyHitters(phi=0.5, p=1.0)
        assert problem.exact(frequencies) == {(1, 1): 6}

    def test_thresholds(self, frequencies):
        problem = HeavyHitters(phi=0.4, p=1.0, slack=2.0)
        assert problem.mandatory_threshold(frequencies) == pytest.approx(4.0)
        assert problem.forbidden_threshold(frequencies) == pytest.approx(2.0)

    def test_acceptance_requires_recall(self, frequencies):
        problem = HeavyHitters(phi=0.4, p=1.0, slack=2.0)
        assert problem.is_acceptable({(1, 1)}, frequencies)
        assert not problem.is_acceptable(set(), frequencies)  # misses (1,1)

    def test_acceptance_rejects_false_positives(self, frequencies):
        problem = HeavyHitters(phi=0.4, p=1.0, slack=2.0)
        # (0, 0) has frequency 1 < forbidden threshold 2, so reporting it fails.
        assert not problem.is_acceptable({(1, 1), (0, 0)}, frequencies)
        # (0, 1) has frequency 3 which is allowed (between the thresholds).
        assert problem.is_acceptable({(1, 1), (0, 1)}, frequencies)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HeavyHitters(phi=0.0)
        with pytest.raises(InvalidParameterError):
            HeavyHitters(phi=0.5, slack=1.0)


class TestLpSampling:
    def test_exact_distribution(self, frequencies):
        problem = LpSampling(p=1.0)
        distribution = problem.exact(frequencies)
        assert distribution[(1, 1)] == pytest.approx(0.6)

    def test_acceptance_of_close_empirical_distribution(self, frequencies):
        problem = LpSampling(p=1.0, epsilon=0.3)
        empirical = {(1, 1): 0.58, (0, 1): 0.31, (0, 0): 0.11}
        assert problem.is_acceptable(empirical, frequencies, statistical_slack=0.02)

    def test_rejection_of_distorted_distribution(self, frequencies):
        problem = LpSampling(p=1.0, epsilon=0.1)
        empirical = {(1, 1): 0.2, (0, 1): 0.7, (0, 0): 0.1}
        assert not problem.is_acceptable(empirical, frequencies)

    def test_rejection_of_mass_on_unobserved_patterns(self, frequencies):
        problem = LpSampling(p=1.0, epsilon=0.3)
        empirical = {(1, 0): 0.5, (1, 1): 0.5}
        assert not problem.is_acceptable(empirical, frequencies)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LpSampling(p=0.0)
        with pytest.raises(InvalidParameterError):
            LpSampling(p=1.0, epsilon=1.5)
        with pytest.raises(InvalidParameterError):
            LpSampling(p=1.0, delta=-0.1)
