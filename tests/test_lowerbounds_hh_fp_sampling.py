"""Tests for the Theorem 5.3 / 5.4 / 5.5 hard instances and their separations."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.lowerbounds.fp_instance import (
    FpHardInstance,
    FpInstanceParameters,
    build_fp_instance,
    equation_5_bound,
)
from repro.lowerbounds.hh_instance import (
    HeavyHitterHardInstance,
    HeavyHitterInstanceParameters,
    build_heavy_hitter_instance,
)
from repro.lowerbounds.sampling_instance import build_sampling_instance

# Shared parameters that realise the separations at laptop scale; see
# DESIGN.md (E6-E8) for the finite-d sizing argument.
D = 30
EPSILON = 0.3
GAMMA = 0.05


class TestHeavyHitterInstance:
    @pytest.mark.parametrize("membership", [True, False])
    def test_zero_pattern_heaviness_tracks_membership(self, membership):
        instance = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=membership, seed=0
        )
        assert instance.answer is membership
        assert instance.is_zero_pattern_heavy() is membership
        assert instance.separation_holds()

    def test_zero_pattern_frequency_bounds(self):
        member = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=True, seed=1
        )
        non_member = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=False, seed=1
        )
        params = member.parameters
        assert member.zero_pattern_frequency() >= params.zero_pattern_count_if_member
        assert non_member.zero_pattern_frequency() <= (
            params.zero_pattern_count_if_not_member(len(non_member.code))
        )

    def test_ones_block_is_present(self):
        instance = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=1.5, membership=False, seed=2
        )
        ones_row = (1,) * D
        count = sum(1 for row in instance.dataset.iter_rows() if row == ones_row)
        assert count >= instance.parameters.ones_block_copies

    def test_query_is_the_complement_of_bobs_support(self):
        instance = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=True, seed=3
        )
        bob = instance.index_instance.bob_word
        support = {i for i, s in enumerate(bob) if s}
        assert set(instance.query.columns) == set(range(D)) - support

    def test_decision_rule_from_report(self):
        instance = build_heavy_hitter_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=True, seed=4
        )
        assert instance.decide_from_report({instance.zero_pattern}) is True
        assert instance.decide_from_report(set()) is False

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            HeavyHitterInstanceParameters(d=D, epsilon=0.4, gamma=GAMMA, p=2.0)
        with pytest.raises(InvalidParameterError):
            HeavyHitterInstanceParameters(d=D, epsilon=EPSILON, gamma=0.2, p=2.0)
        with pytest.raises(InvalidParameterError):
            HeavyHitterInstanceParameters(d=D, epsilon=EPSILON, gamma=GAMMA, p=1.0)


class TestFpInstance:
    @pytest.mark.parametrize("membership", [True, False])
    def test_small_p_fp_value_decides_membership(self, membership):
        instance = build_fp_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=membership, seed=0
        )
        assert isinstance(instance, FpHardInstance)
        decided = instance.decide_from_estimate(instance.exact_fp())
        assert decided is membership

    def test_small_p_gap_is_a_constant_factor(self):
        member_values = []
        non_member_values = []
        for seed in range(3):
            member_values.append(
                build_fp_instance(
                    d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=True, seed=seed
                ).exact_fp()
            )
            non_member_values.append(
                build_fp_instance(
                    d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=False, seed=seed
                ).exact_fp()
            )
        assert min(member_values) > 2.0 * max(non_member_values)

    def test_member_branch_meets_theoretical_floor(self):
        instance = build_fp_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=True, seed=1
        )
        assert instance.exact_fp() >= instance.parameters.fp_if_member

    def test_large_p_branch_reuses_theorem_5_3_instance(self):
        instance = build_fp_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=True, seed=2
        )
        assert isinstance(instance, HeavyHitterHardInstance)

    def test_large_p_fp_gap(self):
        member = build_fp_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=True, seed=3
        )
        non_member = build_fp_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=False, seed=3
        )
        fp_member = member.frequencies().frequency_moment(2.0)
        fp_non_member = non_member.frequencies().frequency_moment(2.0)
        assert fp_member > 1.3 * fp_non_member

    def test_equation_5_bound_positive_and_monotone_in_code_size(self):
        small = equation_5_bound(D, EPSILON, 0.14, 0.5, code_size=4)
        large = equation_5_bound(D, EPSILON, 0.14, 0.5, code_size=16)
        assert 0 < small < large

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            FpInstanceParameters(d=D, epsilon=EPSILON, gamma=GAMMA, p=1.5)
        with pytest.raises(InvalidParameterError):
            build_fp_instance(
                d=D, epsilon=EPSILON, gamma=GAMMA, p=1.0, membership=True
            )


class TestSamplingInstance:
    @pytest.mark.parametrize("p", [0.5, 2.0])
    @pytest.mark.parametrize("membership", [True, False])
    def test_witness_mass_decides_membership(self, p, membership):
        instance = build_sampling_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=p, membership=membership, seed=0
        )
        assert instance.answer is membership
        assert instance.separation_holds()

    def test_small_p_witnesses_have_zero_mass_without_membership(self):
        instance = build_sampling_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=False, seed=1
        )
        assert instance.witness_mass() == 0.0

    def test_small_p_witnesses_carry_constant_mass_with_membership(self):
        instance = build_sampling_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=True, seed=1
        )
        assert instance.witness_mass() >= 0.1

    def test_decision_from_draws(self):
        instance = build_sampling_instance(
            d=D, epsilon=EPSILON, gamma=GAMMA, p=0.5, membership=True, seed=2
        )
        witness = next(iter(instance.witness_patterns))
        non_witness = (0,) * len(instance.query)
        assert instance.decide_from_draws([witness] * 5 + [non_witness] * 5) is True
        assert instance.decide_from_draws([non_witness] * 10) is False
        assert instance.decide_from_draws([]) is False

    def test_empirical_sampling_from_exact_distribution_decides(self):
        for membership in (True, False):
            instance = build_sampling_instance(
                d=D, epsilon=EPSILON, gamma=GAMMA, p=2.0, membership=membership, seed=3
            )
            empirical = instance.frequencies().lp_sampling_distribution(2.0)
            assert instance.decide_from_empirical(empirical) is membership

    def test_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            build_sampling_instance(
                d=D, epsilon=EPSILON, gamma=GAMMA, p=1.0, membership=True
            )
