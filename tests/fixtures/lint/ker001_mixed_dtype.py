# Golden fixture: KER001 — mixed uint64/int64 arithmetic.
import numpy as np


def mix(values):
    hashes = np.asarray(values, dtype=np.uint64)
    step = np.arange(4, dtype=np.int64)
    return hashes * step
