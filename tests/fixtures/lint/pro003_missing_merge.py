# Golden fixture: PRO003 — mergeable sketch without merge().


class DistinctCountSketch:
    pass


def snapshottable(tag):
    def wrap(cls):
        return cls

    return wrap


@snapshottable("fixture.pro003")
class NoMerge(DistinctCountSketch):
    def update_block(self, items, counts=None):
        return None

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        return None
