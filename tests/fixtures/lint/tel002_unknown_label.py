# Golden fixture: TEL002 — label not listed for the metric.


def record(registry):
    registry.counter("repro_merge_total").inc(shard="0")
