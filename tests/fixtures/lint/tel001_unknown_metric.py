# Golden fixture: TEL001 — metric name outside the repro_* catalogue.


def record(registry):
    registry.counter("rows_total").inc()
