# Golden fixture: KER002 — float equality comparison in a kernel.


def has_boundary(values, width):
    scaled = values / width
    return scaled == 0.5
