# Golden fixture: PRO009 — transport RPCs bypassing the resilience wrappers.
import socket


def dial(host, port):
    return socket.create_connection((host, port))


def collect(conn):
    return conn.recv_bytes()
