# Golden fixture: LINT001 — unparseable file.
def broken(:
    pass
