# Golden fixture: DET001 — unseeded RNG constructor.
import numpy as np


def make_generator():
    return np.random.default_rng()
