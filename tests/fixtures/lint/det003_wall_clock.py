# Golden fixture: DET003 — wall-clock read outside telemetry/.
import time


def stamp_result(payload):
    payload["recorded_at"] = time.time()
    return payload
