# Golden fixture: PRO007 — point-query sketch without estimate_block().


class PointQuerySketch:
    pass


def snapshottable(tag):
    def wrap(cls):
        return cls

    return wrap


@snapshottable("fixture.pro007")
class SlowQueries(PointQuerySketch):
    def merge(self, other):
        return None

    def update_block(self, items, counts=None):
        return None

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        return None

    def estimate(self, item):
        return 0.0
