# Golden fixture: PRO001 — sketch subclass without snapshot methods.
# The stub base and decorator mirror the protocol names the rule matches on.


class MergeableSketch:
    pass


def snapshottable(tag):
    def wrap(cls):
        return cls

    return wrap


@snapshottable("fixture.pro001")
class MissingStateDict(MergeableSketch):
    def merge(self, other):
        return None

    def update_block(self, items, counts=None):
        return None
