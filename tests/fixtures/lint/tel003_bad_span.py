# Golden fixture: TEL003 — span name breaking the component.op scheme.


def trace(telemetry):
    with telemetry.span("ingesting rows"):
        return None
