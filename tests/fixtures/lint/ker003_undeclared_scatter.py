# Golden fixture: KER003 — scatter update on a dtype-less accumulator.
import numpy as np


def scatter(indexes, counts):
    totals = np.zeros(16)
    np.add.at(totals, indexes, counts)
    return totals
