# Golden fixture: PRO002 — concrete sketch without @snapshottable.


class MergeableSketch:
    pass


class Unregistered(MergeableSketch):
    def merge(self, other):
        return None

    def update_block(self, items, counts=None):
        return None

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        return None
