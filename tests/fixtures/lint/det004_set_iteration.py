# Golden fixture: DET004 — iteration over an unordered set in merge().


def merge(mine, theirs):
    shared = set(mine) | set(theirs)
    total = 0
    for key in shared:
        total += len(key)
    return total
