# Golden fixture: DET002 — global RNG state seeded in place.
import numpy as np


def seed_everything():
    np.random.seed(1234)
