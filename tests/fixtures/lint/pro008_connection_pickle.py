# Golden fixture: PRO008 — pickled Connection traffic in transport code.
import marshal


def ship(conn, estimator):
    conn.send(estimator)
    payload = marshal.dumps(estimator)
    return payload


def collect(conn):
    return conn.recv()
