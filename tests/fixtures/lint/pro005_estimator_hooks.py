# Golden fixture: PRO005 — estimator subclass missing summary hooks.


class ProjectedFrequencyEstimator:
    pass


def snapshottable(tag):
    def wrap(cls):
        return cls

    return wrap


@snapshottable("fixture.pro005")
class PartialEstimator(ProjectedFrequencyEstimator):
    def _summary_state(self):
        return {}
