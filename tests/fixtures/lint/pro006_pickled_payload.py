# Golden fixture: PRO006 — pickle used for worker payloads.
import pickle


def ship(payload):
    return pickle.dumps(payload)
