# Golden fixture: PRO004 — mergeable sketch without update_block().


class PointQuerySketch:
    pass


def snapshottable(tag):
    def wrap(cls):
        return cls

    return wrap


@snapshottable("fixture.pro004")
class SlowSketch(PointQuerySketch):
    def merge(self, other):
        return None

    def state_dict(self):
        return {}

    def load_state_dict(self, state):
        return None
